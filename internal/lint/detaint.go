package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// detaint: interprocedural nondeterminism taint. The syntactic
// determinism analyzer flags sources — map iteration, time.Now,
// math/rand — that sit inside a kernel package function. What it cannot
// see is a helper in a non-kernel package that derives floating-point
// state from such a source and returns it into a kernel: the source is
// out of scope, the kernel call site looks clean.
//
// This analyzer closes that hole. A whole-program fixpoint computes, per
// declared function, whether its float-typed return values are tainted
// by a nondeterminism source (directly, or transitively by calling a
// tainted function). The reporting pass then walks only the kernel
// packages and flags calls to tainted functions whose float result is
// used. Intra-function sources are deliberately NOT re-reported — those
// are the syntactic analyzer's findings; detaint reports exclusively the
// cross-call paths it alone can see.

// taintKernelPkgs are the packages whose floating-point state must be
// deterministic (a subset of the syntactic analyzer's list: the ones
// that compute, not the ones that assemble).
var taintKernelPkgs = map[string]bool{
	"sparse": true,
	"ilu":    true,
	"krylov": true,
	"par":    true,
	"dsys":   true,
}

var DeTaint = &ProgramAnalyzer{
	Name: "detaint",
	Doc:  "calls into functions whose float results are tainted by nondeterminism sources (time, rand, map order)",
	Run:  runDeTaint,
}

// taintSummary is one function's verdict in the fixpoint.
type taintSummary struct {
	tainted bool
	reason  string // root cause, e.g. "time.Now" or "map iteration order"
}

func runDeTaint(prog *Program) []Diagnostic {
	g := prog.CallGraph()

	// Deterministic node order for the fixpoint and for reason selection.
	nodes := sortedNodes(g)

	// Whole-program fixpoint: a function is tainted when one of its
	// float-typed returns can carry a source value. Sources grow as
	// summaries land, so iterate until stable. Termination: summaries
	// only flip false→true.
	summaries := map[*CGNode]*taintSummary{}
	for changed := true; changed; {
		changed = false
		for _, node := range nodes {
			if s := summaries[node]; s != nil && s.tainted {
				continue
			}
			s := taintFunc(node, g, summaries)
			if s.tainted {
				summaries[node] = s
				changed = true
			}
		}
	}

	// Reporting pass: kernel packages only, cross-call findings only.
	var out []Diagnostic
	for _, node := range nodes {
		if !taintKernelPkgs[lastInternalPkg(node.Pkg.Path)] {
			continue
		}
		discarded := discardedCalls(node.Decl.Body)
		for _, e := range node.Out {
			if e.Callee == nil || e.Callee == node {
				continue // external, or self-recursion (intra-function)
			}
			s := summaries[e.Callee]
			if s == nil || !s.tainted {
				continue
			}
			if discarded[e.Site] {
				continue // result unused: no float state enters the kernel
			}
			tv, ok := node.Pkg.Info.Types[e.Site]
			if !ok || !hasFloatResult(tv.Type) {
				continue
			}
			out = append(out, diag(node.Pkg, e.Site.Pos(), "detaint",
				"call to %s feeds nondeterministic floating-point state (tainted by %s) into kernel package %q",
				FuncDisplayName(e.Callee.Fn), s.reason, lastInternalPkg(node.Pkg.Path)))
		}
	}
	sortDiags(out)
	return out
}

// taintFunc computes one function's summary against the current set of
// callee summaries.
func taintFunc(node *CGNode, g *CallGraph, summaries map[*CGNode]*taintSummary) *taintSummary {
	p := node.Pkg
	body := node.Decl.Body

	// sourceOf reports whether a call expression produces tainted data,
	// and the root reason.
	sourceOf := func(call *ast.CallExpr) (string, bool) {
		fn := calleeFunc(p, call)
		if fn == nil {
			return "", false
		}
		if r, ok := externalTaintSource(fn); ok {
			return r, true
		}
		if target := g.Nodes[fn]; target != nil && target != node {
			if s := summaries[target]; s != nil && s.tainted {
				return s.reason, true
			}
		}
		return "", false
	}

	// Intraprocedural taint over named objects, to a fixpoint: an
	// assignment whose RHS mentions a tainted object or a source call
	// taints its LHS. Map-range float accumulation is a direct source.
	tainted := map[types.Object]string{}
	taintObj := func(e ast.Expr, reason string) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := p.Info.ObjectOf(id); obj != nil {
				if _, seen := tainted[obj]; !seen {
					tainted[obj] = reason
				}
			}
		}
	}
	// exprTaint reports whether e mentions a tainted object or source call.
	exprTaint := func(e ast.Expr) (string, bool) {
		var reason string
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if r, ok := sourceOf(x); ok {
					reason, found = r, true
					return false
				}
			case *ast.Ident:
				if obj := p.Info.Uses[x]; obj != nil {
					if r, ok := tainted[obj]; ok {
						reason, found = r, true
						return false
					}
				}
			}
			return true
		})
		return reason, found
	}

	// Seed: float accumulation inside map-range bodies taints the
	// accumulator — the sum depends on iteration order.
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 {
				return true
			}
			switch as.Tok.String() {
			case "+=", "-=", "*=", "/=":
				if tv, ok := p.Info.Types[as.Lhs[0]]; ok && isFloat(tv.Type) {
					taintObj(as.Lhs[0], "float accumulation in map iteration order")
				}
			}
			return true
		})
		return true
	})

	// Propagate through assignments until stable.
	for changed := true; changed; {
		changed = false
		before := len(tainted)
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncLit:
				return true // closures run on our behalf: keep walking
			case *ast.AssignStmt:
				if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
					if r, ok := exprTaint(st.Rhs[0]); ok {
						for _, l := range st.Lhs {
							taintObj(l, r)
						}
					}
					return true
				}
				for i, rhs := range st.Rhs {
					if i >= len(st.Lhs) {
						break
					}
					if r, ok := exprTaint(rhs); ok {
						taintObj(st.Lhs[i], r)
					}
				}
			}
			return true
		})
		if len(tainted) != before {
			changed = true
		}
	}

	// Verdict: does any float-typed return expression carry taint?
	sig, _ := node.Fn.Type().(*types.Signature)
	var verdict *taintSummary
	ast.Inspect(body, func(n ast.Node) bool {
		if verdict != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure's returns are not this function's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			// Bare return with named float results.
			if sig != nil {
				for i := 0; i < sig.Results().Len(); i++ {
					res := sig.Results().At(i)
					if res.Name() == "" || !isFloatDeep(res.Type()) {
						continue
					}
					if r, ok := tainted[res]; ok {
						verdict = &taintSummary{tainted: true, reason: r}
						return false
					}
				}
			}
			return true
		}
		for _, e := range ret.Results {
			tv, ok := p.Info.Types[e]
			if !ok || !isFloatDeep(tv.Type) {
				continue
			}
			if r, ok := exprTaint(e); ok {
				verdict = &taintSummary{tainted: true, reason: r}
				return false
			}
		}
		return true
	})
	if verdict != nil {
		return verdict
	}
	return &taintSummary{}
}

// externalTaintSource classifies stdlib functions that are
// nondeterminism sources.
func externalTaintSource(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name(), true
		}
	case "math/rand", "math/rand/v2":
		return pkg.Path() + "." + fn.Name(), true
	}
	return "", false
}

// hasFloatResult reports whether a call-result type carries float data:
// a float (or float slice/array) result, directly or in a tuple.
func hasFloatResult(t types.Type) bool {
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isFloatDeep(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isFloatDeep(t)
}

// discardedCalls returns the calls whose results are thrown away
// (expression statements and `go`/`defer` heads).
func discardedCalls(body ast.Node) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if c, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
				out[c] = true
			}
		case *ast.GoStmt:
			out[st.Call] = true
		case *ast.DeferStmt:
			out[st.Call] = true
		}
		return true
	})
	return out
}

// sortedNodes returns the call-graph nodes in deterministic order
// (package path, then source position).
func sortedNodes(g *CallGraph) []*CGNode {
	nodes := make([]*CGNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Pkg.Path != nodes[j].Pkg.Path {
			return nodes[i].Pkg.Path < nodes[j].Pkg.Path
		}
		return nodes[i].Decl.Pos() < nodes[j].Decl.Pos()
	})
	return nodes
}

// sortDiags orders diagnostics by position then message, for stable
// output and baseline comparison.
func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}
