package fem

import (
	"math"

	"parapre/internal/grid"
	"parapre/internal/sparse"
)

// ScalarPDE describes the scalar model problem
//
//	−k·Δu + v·∇u = f
//
// discretized with P1 elements. When the convection velocity is nonzero
// and SUPG is set, streamline-upwind Petrov–Galerkin weighting is applied
// — the "upwind weighting functions" the paper needs for the
// convection-dominated Test Case 5, producing an unsymmetric matrix.
type ScalarPDE struct {
	Diffusion float64 // k > 0
	// DiffusionFn, when non-nil, makes the diffusion coefficient variable:
	// k(x) evaluated at element centroids (piecewise-constant per element).
	// Discontinuous ("jump") coefficients are the classic stress test for
	// one-level domain-decomposition preconditioners.
	DiffusionFn func(x []float64) float64
	Velocity    []float64                 // constant convection vector; nil or zero for pure diffusion
	Source      func(x []float64) float64 // f; nil means f ≡ 0
	SUPG        bool                      // apply streamline-diffusion stabilization
}

// velocityNorm returns |v| of the convection field (0 when absent).
func (pde *ScalarPDE) velocityNorm() float64 {
	var vnorm float64
	for _, v := range pde.Velocity {
		vnorm += v * v
	}
	return math.Sqrt(vnorm)
}

// elemScale returns the element length scale h used by the SUPG parameter.
func elemScale(dim int, measure float64) float64 {
	if dim == 2 {
		return math.Sqrt(2 * measure)
	}
	return math.Cbrt(6 * measure)
}

// scalarKernel builds the per-element assembly body of AssembleScalar.
func scalarKernel(m *grid.Mesh, pde ScalarPDE) func(e int, s *sink) {
	npe := m.NPE
	vel := pde.Velocity
	vnorm := pde.velocityNorm()
	convect := vnorm > 0

	return func(e int, s *sink) {
		g := geometry(m, e)
		el := m.Elem(e)

		kDiff := pde.Diffusion
		if pde.DiffusionFn != nil {
			centroid(m, e, s.x)
			kDiff = pde.DiffusionFn(s.x)
		}

		// Diffusion: k·|E|·∇φ_i·∇φ_j.
		for i := 0; i < npe; i++ {
			for j := 0; j < npe; j++ {
				var dot float64
				for d := 0; d < m.Dim; d++ {
					dot += g.grad[i][d] * g.grad[j][d]
				}
				s.add(el[i], el[j], kDiff*g.measure*dot)
			}
		}

		// Source with one-point (centroid) quadrature: exact enough for P1
		// and keeps f evaluations to one per element.
		var fc float64
		if pde.Source != nil {
			centroid(m, e, s.x)
			fc = pde.Source(s.x)
			w := g.measure / float64(npe)
			for i := 0; i < npe; i++ {
				s.addRHS(el[i], w*fc)
			}
		}

		if !convect {
			return
		}

		// Convection: (v·∇φ_j)·∫φ_i = (v·∇φ_j)·|E|/NPE.
		var vg [4]float64
		for i := 0; i < npe; i++ {
			for d := 0; d < m.Dim; d++ {
				vg[i] += vel[d] * g.grad[i][d]
			}
		}
		w := g.measure / float64(npe)
		for i := 0; i < npe; i++ {
			for j := 0; j < npe; j++ {
				s.add(el[i], el[j], w*vg[j])
			}
		}

		if !pde.SUPG {
			return
		}

		// SUPG stabilization: τ·|E|·(v·∇φ_i)(v·∇φ_j), with the classical
		// element Péclet-number parameter
		//   τ = h/(2|v|)·(coth(Pe) − 1/Pe),  Pe = |v|·h/(2k),
		// where h is an element length scale (diameter-equivalent of the
		// measure). The same weighting is applied to the source term.
		h := elemScale(m.Dim, g.measure)
		pe := vnorm * h / (2 * kDiff)
		tau := h / (2 * vnorm) * upwindFn(pe)
		for i := 0; i < npe; i++ {
			for j := 0; j < npe; j++ {
				s.add(el[i], el[j], tau*g.measure*vg[i]*vg[j])
			}
			if pde.Source != nil {
				s.addRHS(el[i], tau*g.measure*vg[i]*fc)
			}
		}
	}
}

// AssembleScalar assembles the stiffness matrix and load vector of pde on
// mesh m, with no boundary conditions applied yet (use ApplyDirichlet).
// Large meshes are assembled in parallel over element chunks; the result
// is bit-identical to the serial assembly for every worker count.
func AssembleScalar(m *grid.Mesh, pde ScalarPDE) (*sparse.CSR, []float64) {
	return assemble(m, m.NumNodes(), m.NPE*m.NPE, scalarKernel(m, pde))
}

// upwindFn is ξ(Pe) = coth(Pe) − 1/Pe, evaluated stably near 0.
func upwindFn(pe float64) float64 {
	if pe < 1e-6 {
		return pe / 3 // series: coth x − 1/x = x/3 − x³/45 + …
	}
	if pe > 350 {
		return 1 - 1/pe // avoid overflow in cosh/sinh
	}
	return math.Cosh(pe)/math.Sinh(pe) - 1/pe
}

// AssembleMass assembles the consistent P1 mass matrix
// M_ij = ∫ φ_i φ_j dx, used by the implicit heat-equation step of Test
// Case 4 (A = M + Δt·K).
func AssembleMass(m *grid.Mesh) *sparse.CSR {
	npe := m.NPE
	// Exact P1 formulas: M^e_ij = |E|/12·(1+δ_ij) on triangles,
	// |E|/20·(1+δ_ij) on tets.
	den := 12.0
	if npe == 4 {
		den = 20.0
	}
	a, _ := assemble(m, m.NumNodes(), npe*npe, func(e int, s *sink) {
		g := geometry(m, e)
		el := m.Elem(e)
		off := g.measure / den
		for i := 0; i < npe; i++ {
			for j := 0; j < npe; j++ {
				v := off
				if i == j {
					v = 2 * off
				}
				s.add(el[i], el[j], v)
			}
		}
	})
	return a
}

// LumpedMass returns the row-sum lumped mass weights: w_i = Σ_j M_ij.
// These are also the nodal quadrature weights ∫φ_i dx.
func LumpedMass(m *grid.Mesh) []float64 {
	nn := m.NumNodes()
	w := make([]float64, nn)
	for e := 0; e < m.NumElems(); e++ {
		g := geometry(m, e)
		share := g.measure / float64(m.NPE)
		for _, n := range m.Elem(e) {
			w[n] += share
		}
	}
	return w
}

// AssembleElasticity assembles the linear-elasticity system of Test Case 6,
//
//	−μ·Δu − (μ+λ)·∇(∇·u) = f,
//
// in the weak form ∫ μ∇u:∇w + (μ+λ)(∇·u)(∇·w) = ∫ f·w, with two
// displacement unknowns per node interleaved as (u₁⁰, u₂⁰, u₁¹, u₂¹, …).
// Traction (stress) boundary conditions are natural and need no assembly
// work; constrained displacement components are imposed afterwards with
// ApplyDirichlet.
func AssembleElasticity(m *grid.Mesh, mu, lambda float64, f func(x []float64) (fx, fy float64)) (*sparse.CSR, []float64) {
	if m.Dim != 2 {
		panic("fem: AssembleElasticity supports 2D meshes only")
	}
	npe := m.NPE
	gd := mu + lambda
	return assemble(m, 2*m.NumNodes(), npe*npe*4, func(e int, s *sink) {
		g := geometry(m, e)
		el := m.Elem(e)
		for i := 0; i < npe; i++ {
			for j := 0; j < npe; j++ {
				var gradDot float64
				for d := 0; d < 2; d++ {
					gradDot += g.grad[i][d] * g.grad[j][d]
				}
				// Block (2×2) coupling between nodes i and j:
				//   μ(∇φ_i·∇φ_j)·I + (μ+λ)·∇φ_j⊗∇φ_i  (w-component α, u-component β)
				for alpha := 0; alpha < 2; alpha++ {
					for beta := 0; beta < 2; beta++ {
						v := gd * g.grad[i][alpha] * g.grad[j][beta]
						if alpha == beta {
							v += mu * gradDot
						}
						s.add(2*el[i]+alpha, 2*el[j]+beta, g.measure*v)
					}
				}
			}
		}
		if f != nil {
			centroid(m, e, s.x)
			fx, fy := f(s.x)
			w := g.measure / float64(npe)
			for i := 0; i < npe; i++ {
				s.addRHS(2*el[i], w*fx)
				s.addRHS(2*el[i]+1, w*fy)
			}
		}
	})
}
