package dsys

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parapre/internal/dist"
	"parapre/internal/sparse"
)

// randStructSym builds a random matrix with a structurally symmetric
// pattern (the property dsys relies on for its interface
// classification), unsymmetric values, and a dominant diagonal.
func randStructSym(rng *rand.Rand, n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n, n*8)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 10)
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			if j != i {
				coo.Add(i, j, rng.NormFloat64())
				coo.Add(j, i, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

func randPartition(rng *rand.Rand, n, p int) []int {
	part := make([]int, n)
	for i := range part {
		part[i] = rng.Intn(p)
	}
	// Guarantee non-empty parts.
	perm := rng.Perm(n)
	for q := 0; q < p; q++ {
		part[perm[q]] = q
	}
	return part
}

// TestDistributePropertyRandomMatrices: for arbitrary structurally
// symmetric matrices and arbitrary (even non-contiguous) partitions, the
// distributed matvec must agree with the global one and all structural
// invariants must hold.
func TestDistributePropertyRandomMatrices(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(40)
		p := 2 + rng.Intn(4)
		a := randStructSym(rng, n)
		part := randPartition(rng, n, p)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		systems := Distribute(a, b, part, p)
		for _, s := range systems {
			if err := s.CheckStructure(); err != nil {
				t.Logf("structure: %v", err)
				return false
			}
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := a.MulVec(x)
		xl := Scatter(systems, x)
		yl := make([][]float64, p)
		dist.Run(p, testMachine(), func(c *dist.Comm) {
			s := systems[c.Rank()]
			y := make([]float64, s.NLoc())
			ext := make([]float64, s.NLoc()+s.NExt())
			s.MatVec(c, y, xl[c.Rank()], ext)
			yl[c.Rank()] = y
		})
		got := Gather(systems, yl)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestRepeatedMatVecStable: the exchange buffers must be reusable —
// several matvecs in a row give identical answers.
func TestRepeatedMatVecStable(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	n, p := 30, 3
	a := randStructSym(rng, n)
	part := randPartition(rng, n, p)
	b := make([]float64, n)
	systems := Distribute(a, b, part, p)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	xl := Scatter(systems, x)
	outs := make([][]float64, 3)
	for round := 0; round < 3; round++ {
		yl := make([][]float64, p)
		dist.Run(p, testMachine(), func(c *dist.Comm) {
			s := systems[c.Rank()]
			y := make([]float64, s.NLoc())
			ext := make([]float64, s.NLoc()+s.NExt())
			for k := 0; k <= round; k++ { // also repeat within one run
				s.MatVec(c, y, xl[c.Rank()], ext)
			}
			yl[c.Rank()] = y
		})
		outs[round] = Gather(systems, yl)
	}
	for round := 1; round < 3; round++ {
		for i := range outs[0] {
			if outs[round][i] != outs[0][i] {
				t.Fatalf("round %d: matvec result changed at %d", round, i)
			}
		}
	}
}

// TestNeighborSymmetry: if rank a receives from rank b, rank b must list
// rank a with a matching send list.
func TestNeighborSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	a := randStructSym(rng, 40)
	part := randPartition(rng, 40, 4)
	systems := Distribute(a, make([]float64, 40), part, 4)
	for _, s := range systems {
		for _, nb := range s.Neigh {
			if nb.RecvLen == 0 {
				continue
			}
			peer := systems[nb.Rank]
			found := false
			for _, pn := range peer.Neigh {
				if pn.Rank == s.Rank && len(pn.SendIdx) == nb.RecvLen {
					found = true
					// The globals must line up.
					for k := 0; k < nb.RecvLen; k++ {
						want := s.ExtGlobal[nb.RecvOff+k]
						got := peer.GlobalIDs[pn.SendIdx[k]]
						if got != want {
							t.Fatalf("rank %d←%d slot %d: peer sends %d, want %d",
								s.Rank, nb.Rank, k, got, want)
						}
					}
				}
			}
			if !found {
				t.Fatalf("rank %d receives %d values from %d, but no matching send list",
					s.Rank, nb.RecvLen, nb.Rank)
			}
		}
	}
}

// TestOwnedBlockIsPrincipalSubmatrix verifies OwnedBlock against the
// global matrix through the local-global maps.
func TestOwnedBlockIsPrincipalSubmatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	a := randStructSym(rng, 25)
	part := randPartition(rng, 25, 3)
	systems := Distribute(a, make([]float64, 25), part, 3)
	for _, s := range systems {
		blk := s.OwnedBlock()
		for li := 0; li < s.NLoc(); li++ {
			for lj := 0; lj < s.NLoc(); lj++ {
				if got, want := blk.At(li, lj), a.At(s.GlobalIDs[li], s.GlobalIDs[lj]); got != want {
					t.Fatalf("rank %d: OwnedBlock(%d,%d) = %v, want %v", s.Rank, li, lj, got, want)
				}
			}
		}
	}
}
