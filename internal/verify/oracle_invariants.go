package verify

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"parapre/internal/core"
	"parapre/internal/dsys"
	"parapre/internal/mmio"
	"parapre/internal/order"
	"parapre/internal/partition"
	"parapre/internal/sparse"
)

// checkSpMVDense compares the sparse kernels against dense references.
func checkSpMVDense(cfg Config) []Violation {
	var out []Violation
	sizes := []int{1, 2, 7, 16}
	if !cfg.Quick {
		sizes = append(sizes, 33, 61)
	}
	for _, n := range sizes {
		for trial := int64(0); trial < 3; trial++ {
			seed := cfg.Seed + 100*int64(n) + trial
			a := randomDiagDominant(n, 0.3, seed)
			ad := a.Dense()
			x := randomRHS(n, seed)

			y := make([]float64, n)
			a.MulVecTo(y, x)
			yd := ad.MulVec(x)
			if d := maxAbsDiff(y, yd); d > 1e-13*denseScale(ad) {
				out = append(out, Violation{"spmv-dense",
					fmt.Sprintf("MulVecTo differs from dense mat-vec by %g", d),
					repro(n, seed, "")})
			}

			// MulVecAdd: y + 2·A·x, and MulVecSub: y − A·x.
			y2 := append([]float64(nil), x...)
			a.MulVecAdd(y2, 2, x)
			for i := range yd {
				yd[i] = x[i] + 2*yd[i]
			}
			if d := maxAbsDiff(y2, yd); d > 1e-12*denseScale(ad) {
				out = append(out, Violation{"spmv-dense",
					fmt.Sprintf("MulVecAdd differs from dense reference by %g", d),
					repro(n, seed, "")})
			}

			// Transpose: (Aᵀ)ᵀ = A exactly, and Aᵀ dense-equal.
			at := a.Transpose()
			if !at.Transpose().Equal(a) {
				out = append(out, Violation{"spmv-dense",
					"double transpose does not reproduce the matrix", repro(n, seed, "")})
			}
			atd := at.Dense()
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					//lint:ignore floatcmp transpose copies values, bit-exactness is the oracle
					if atd.At(i, j) != ad.At(j, i) {
						out = append(out, Violation{"spmv-dense",
							fmt.Sprintf("transpose entry (%d,%d) = %g, want %g", i, j, atd.At(i, j), ad.At(j, i)),
							repro(n, seed, "")})
					}
				}
			}

			// Dot: deterministic blocked reduction vs plain accumulation.
			u := randomRHS(n, seed+1)
			got := sparse.Dot(x, u)
			var want float64
			for i := range x {
				want += x[i] * u[i]
			}
			if d := math.Abs(got - want); d > 1e-12*(1+math.Abs(want)) {
				out = append(out, Violation{"spmv-dense",
					fmt.Sprintf("Dot = %g, plain accumulation %g", got, want), repro(n, seed, "")})
			}
		}
	}
	return out
}

// checkPermIdentity validates permutation algebra: applying a permutation
// and scattering back is the identity (P·Pᵀ = I), RCM produces a valid
// permutation on arbitrary patterns, and PermuteSym agrees with the dense
// congruence.
func checkPermIdentity(cfg Config) []Violation {
	var out []Violation
	sizes := []int{1, 2, 9, 24}
	if !cfg.Quick {
		sizes = append(sizes, 57)
	}
	for _, n := range sizes {
		for trial := int64(0); trial < 3; trial++ {
			seed := cfg.Seed + 200*int64(n) + trial
			a := randomSPD(n, 0.25, seed)
			p := order.RCM(a)
			if !p.IsValid() {
				out = append(out, Violation{"perm-identity",
					"RCM returned an invalid permutation", repro(n, seed, "")})
				continue
			}
			// P·Pᵀ = I through the vector round trip.
			x := randomRHS(n, seed)
			y := make([]float64, n)
			z := make([]float64, n)
			p.ApplyVecTo(y, x)
			p.ScatterVecTo(z, y)
			if d := maxAbsDiff(x, z); d != 0 {
				out = append(out, Violation{"perm-identity",
					fmt.Sprintf("scatter∘apply differs from identity by %g", d), repro(n, seed, "")})
			}
			// Inverse inverts.
			inv := p.Inverse()
			for i := range p {
				if inv[p[i]] != i {
					out = append(out, Violation{"perm-identity",
						fmt.Sprintf("Inverse()[p[%d]] = %d", i, inv[p[i]]), repro(n, seed, "")})
					break
				}
			}
			// PermuteSym = dense congruence B(i,j) = A(p[i], p[j]).
			b := sparse.PermuteSym(a, p)
			bd := b.Dense()
			ad := a.Dense()
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					//lint:ignore floatcmp permutation moves values without arithmetic, bit-exactness is the oracle
					if bd.At(i, j) != ad.At(p[i], p[j]) {
						out = append(out, Violation{"perm-identity",
							fmt.Sprintf("PermuteSym entry (%d,%d) = %g, dense congruence %g",
								i, j, bd.At(i, j), ad.At(p[i], p[j])),
							repro(n, seed, "")})
					}
				}
			}
		}
	}
	return out
}

// checkPartitionValid exercises the general graph partitioner on the edge
// cases that used to break it: p = 1, p ≥ vertex count, and disconnected
// graphs. Every vertex must be assigned a part in range, and no part may
// be empty unless p exceeds the vertex count.
func checkPartitionValid(cfg Config) []Violation {
	var out []Violation
	sizes := []int{2, 5, 16}
	if !cfg.Quick {
		sizes = append(sizes, 40, 77)
	}
	for _, n := range sizes {
		for trial := int64(0); trial < 3; trial++ {
			seed := cfg.Seed + 300*int64(n) + trial
			for _, disconnect := range []bool{false, true} {
				g := randomGraph(n, disconnect, seed)
				for _, p := range []int{0, 1, 2, 3, n - 1, n, n + 3} {
					part := func() (part []int) {
						defer func() {
							if r := recover(); r != nil {
								out = append(out, Violation{"partition-valid",
									fmt.Sprintf("General(p=%d, disconnected=%v) panicked: %v", p, disconnect, r),
									repro(n, seed, fmt.Sprintf("p=%d", p))})
								part = nil
							}
						}()
						part, err := partition.General(g, p, seed)
						var pe *partition.PartitionError
						switch {
						case p < 1 && !errors.As(err, &pe):
							out = append(out, Violation{"partition-valid",
								fmt.Sprintf("General(p=%d) must return a typed *PartitionError, got %v", p, err),
								repro(n, seed, fmt.Sprintf("p=%d", p))})
							return nil
						case p >= 1 && err != nil:
							out = append(out, Violation{"partition-valid",
								fmt.Sprintf("General(p=%d, disconnected=%v) failed: %v", p, disconnect, err),
								repro(n, seed, fmt.Sprintf("p=%d", p))})
							return nil
						case p < 1:
							return nil
						}
						return part
					}()
					if part == nil {
						continue
					}
					out = append(out, validatePartition(part, n, p, disconnect, seed)...)
				}
			}
		}
	}
	return out
}

func validatePartition(part []int, n, p int, disconnect bool, seed int64) []Violation {
	var out []Violation
	ctx := fmt.Sprintf("p=%d disconnected=%v", p, disconnect)
	if len(part) != n {
		return []Violation{{"partition-valid",
			fmt.Sprintf("partition length %d, want %d", len(part), n), repro(n, seed, ctx)}}
	}
	sizes := make([]int, p)
	for v, q := range part {
		if q < 0 || q >= p {
			return []Violation{{"partition-valid",
				fmt.Sprintf("vertex %d assigned out-of-range part %d", v, q), repro(n, seed, ctx)}}
		}
		sizes[q]++
	}
	if p <= n {
		for q, sz := range sizes {
			if sz == 0 {
				out = append(out, Violation{"partition-valid",
					fmt.Sprintf("part %d empty with p=%d ≤ n=%d", q, p, n), repro(n, seed, ctx)})
			}
		}
	}
	return out
}

// randomGraph builds a connected random graph, optionally split into two
// disconnected halves.
func randomGraph(n int, disconnect bool, seed int64) *partition.Graph {
	rng := rand.New(rand.NewSource(seed ^ 0x6a7))
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	half := n
	if disconnect && n >= 4 {
		half = n / 2
	}
	link := func(a, b int) {
		if a != b {
			adj[a][b] = true
			adj[b][a] = true
		}
	}
	// Spanning chains keep each component connected.
	for i := 1; i < half; i++ {
		link(i-1, i)
	}
	for i := half + 1; i < n; i++ {
		link(i-1, i)
	}
	// Random extra edges within components.
	for e := 0; e < n; e++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if (a < half) == (b < half) {
			link(a, b)
		}
	}
	g := &partition.Graph{Ptr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if adj[i][j] {
				g.Adj = append(g.Adj, j)
			}
		}
		g.Ptr[i+1] = len(g.Adj)
	}
	return g
}

// checkCOOCSR verifies triplet assembly: duplicates sum, and the result
// matches a dense accumulation entry for entry.
func checkCOOCSR(cfg Config) []Violation {
	var out []Violation
	sizes := []int{1, 3, 12}
	if !cfg.Quick {
		sizes = append(sizes, 29)
	}
	for _, n := range sizes {
		for trial := int64(0); trial < 3; trial++ {
			seed := cfg.Seed + 400*int64(n) + trial
			rng := rand.New(rand.NewSource(seed))
			coo := sparse.NewCOO(n, n, 4*n)
			ref := sparse.NewDense(n, n)
			entries := 5 * n
			for e := 0; e < entries; e++ {
				i, j := rng.Intn(n), rng.Intn(n)
				v := rng.NormFloat64()
				coo.Add(i, j, v)
				ref.Add(i, j, v)
			}
			a := coo.ToCSR()
			if err := a.CheckValid(); err != nil {
				out = append(out, Violation{"coo-csr", fmt.Sprintf("ToCSR invalid: %v", err), repro(n, seed, "")})
				continue
			}
			ad := a.Dense()
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d := math.Abs(ad.At(i, j) - ref.At(i, j)); d > 1e-13*(1+math.Abs(ref.At(i, j))) {
						out = append(out, Violation{"coo-csr",
							fmt.Sprintf("assembled (%d,%d) = %g, dense accumulation %g", i, j, ad.At(i, j), ref.At(i, j)),
							repro(n, seed, "")})
					}
				}
			}
		}
	}
	return out
}

// checkMMIORoundTrip verifies write→read→write stability: the re-read
// matrix equals the in-memory CSR exactly and the second write is
// byte-identical to the first.
func checkMMIORoundTrip(cfg Config) []Violation {
	var out []Violation
	sizes := []int{1, 2, 8}
	if !cfg.Quick {
		sizes = append(sizes, 23)
	}
	for _, n := range sizes {
		for trial := int64(0); trial < 3; trial++ {
			seed := cfg.Seed + 500*int64(n) + trial
			a := randomDiagDominant(n, 0.3, seed)
			var w1 bytes.Buffer
			if err := mmio.WriteMatrix(&w1, a); err != nil {
				out = append(out, Violation{"mmio-roundtrip", fmt.Sprintf("write: %v", err), repro(n, seed, "")})
				continue
			}
			back, err := mmio.ReadMatrix(bytes.NewReader(w1.Bytes()))
			if err != nil {
				out = append(out, Violation{"mmio-roundtrip", fmt.Sprintf("read back: %v", err), repro(n, seed, "")})
				continue
			}
			if !back.Equal(a) {
				out = append(out, Violation{"mmio-roundtrip",
					"re-read matrix differs from the in-memory CSR", repro(n, seed, "")})
				continue
			}
			var w2 bytes.Buffer
			if err := mmio.WriteMatrix(&w2, back); err != nil {
				out = append(out, Violation{"mmio-roundtrip", fmt.Sprintf("second write: %v", err), repro(n, seed, "")})
				continue
			}
			if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
				out = append(out, Violation{"mmio-roundtrip",
					"second write is not byte-identical to the first", repro(n, seed, "")})
			}
		}
	}
	return out
}

// checkDistributeReassembly distributes random systems and reassembles
// the global matrix from the per-rank local matrices: every entry must
// come back bit-identically, every owned unknown exactly once.
func checkDistributeReassembly(cfg Config) []Violation {
	var out []Violation
	sizes := []int{4, 9, 20}
	ps := []int{2, 3}
	if !cfg.Quick {
		sizes = append(sizes, 45)
		ps = append(ps, 5)
	}
	for _, n := range sizes {
		for _, p := range ps {
			if p > n {
				continue
			}
			for trial := int64(0); trial < 2; trial++ {
				seed := cfg.Seed + 600*int64(n) + trial
				for _, nonsym := range []bool{false, true} {
					var a *sparse.CSR
					if nonsym {
						a = randomNonsymPattern(n, 0.2, seed)
					} else {
						a = randomDiagDominant(n, 0.2, seed)
					}
					b := randomRHS(n, seed)
					g := core.PatternGraph(a)
					part, err := partition.General(g, p, seed)
					if err != nil {
						out = append(out, Violation{"distribute-reassembly",
							fmt.Sprintf("partition failed: %v", err), repro(n, seed, fmt.Sprintf("P=%d", p))})
						continue
					}
					systems := dsys.Distribute(a, b, part, p)
					out = append(out, reassembleAndCompare(a, b, part, systems, n, seed, p)...)
				}
			}
		}
	}
	return out
}

func reassembleAndCompare(a *sparse.CSR, b []float64, part []int, systems []*dsys.System, n int, seed int64, p int) []Violation {
	var out []Violation
	ctx := fmt.Sprintf("P=%d", p)
	seen := make([]bool, n)
	ref := sparse.NewDense(n, n)
	for _, s := range systems {
		if err := s.CheckStructure(); err != nil {
			return []Violation{{"distribute-reassembly",
				fmt.Sprintf("rank %d structure: %v", s.Rank, err), repro(n, seed, ctx)}}
		}
		// Local column l maps to GlobalIDs[l] for l < NLoc, else
		// ExtGlobal[l-NLoc].
		colG := func(l int) int {
			if l < s.NLoc() {
				return s.GlobalIDs[l]
			}
			return s.ExtGlobal[l-s.NLoc()]
		}
		for l, g := range s.GlobalIDs {
			if seen[g] {
				out = append(out, Violation{"distribute-reassembly",
					fmt.Sprintf("global row %d owned by more than one rank", g), repro(n, seed, ctx)})
			}
			seen[g] = true
			//lint:ignore floatcmp distribution copies rhs entries, bit-exactness is the oracle
			if b[g] != s.B[l] {
				out = append(out, Violation{"distribute-reassembly",
					fmt.Sprintf("rhs entry %d: local %g, global %g", g, s.B[l], b[g]), repro(n, seed, ctx)})
			}
			cols, vals := s.A.Row(l)
			for k, lj := range cols {
				ref.Add(g, colG(lj), vals[k])
			}
		}
	}
	for g, ok := range seen {
		if !ok {
			out = append(out, Violation{"distribute-reassembly",
				fmt.Sprintf("global row %d owned by no rank", g), repro(n, seed, ctx)})
		}
	}
	ad := a.Dense()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			//lint:ignore floatcmp reassembly sums disjoint copies, bit-exactness is the oracle
			if ref.At(i, j) != ad.At(i, j) {
				out = append(out, Violation{"distribute-reassembly",
					fmt.Sprintf("reassembled (%d,%d) = %g, global %g", i, j, ref.At(i, j), ad.At(i, j)),
					repro(n, seed, ctx)})
			}
		}
	}
	return out
}

// maxAbsDiff returns max_i |x[i] − y[i]|.
func maxAbsDiff(x, y []float64) float64 {
	var m float64
	for i := range x {
		d := math.Abs(x[i] - y[i])
		if d > m {
			m = d
		}
	}
	return m
}

// denseScale returns a magnitude scale for tolerance normalization.
func denseScale(d *sparse.Dense) float64 {
	m := 1.0
	for _, v := range d.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
