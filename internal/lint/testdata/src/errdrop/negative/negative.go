// Package negative holds code errdrop must stay silent on.
package negative

import (
	"fmt"
	"os"
	"strings"
)

// Persist handles or explicitly discards every error.
func Persist(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // deferred cleanup idiom: accepted
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // explicitly discarded: the Sync error wins
		return err
	}
	return nil
}

// Report prints diagnostics through the excluded fmt family.
func Report(n int) {
	fmt.Println("n =", n)
	fmt.Fprintf(os.Stderr, "n = %d\n", n)
}

// Build writes into a strings.Builder, which never fails.
func Build(parts []string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p)
	}
	return b.String()
}

// pureCall returns no error at all.
func pureCall(x int) int { return x * x }

// Chain drops only non-error results.
func Chain() {
	pureCall(3)
}
