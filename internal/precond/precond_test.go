package precond

import (
	"math"
	"testing"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/fem"
	"parapre/internal/grid"
	"parapre/internal/ilu"
	"parapre/internal/krylov"
	"parapre/internal/partition"
	"parapre/internal/sparse"
)

func testMachine() *dist.Machine {
	return &dist.Machine{Name: "test", FlopRate: 1e9, Latency: 1e-6, ByteTime: 1e-9, Load: 1}
}

// buildPoisson assembles a Dirichlet Poisson problem and distributes it.
func buildPoisson(t testing.TB, m, p int, seed int64) ([]*dsys.System, *sparse.CSR, []float64) {
	g := grid.UnitSquareTri(m)
	a, b := fem.AssembleScalar(g, fem.ScalarPDE{
		Diffusion: 1,
		Source:    func(x []float64) float64 { return x[0] * math.Exp(x[1]) },
	})
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			c := g.Coord(n)
			bc[n] = c[0] * math.Exp(c[1])
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	ptr, adj := g.NodeGraph()
	part, err := partition.General(&partition.Graph{Ptr: ptr, Adj: adj}, p, seed)
	if err != nil {
		panic(err)
	}
	return dsys.Distribute(a, b, part, p), a, b
}

// solveWith runs the distributed FGMRES with the given preconditioner
// factory and returns (iterations, gathered solution).
func solveWith(t *testing.T, systems []*dsys.System, p int,
	mk func(s *dsys.System) Preconditioner) (int, []float64) {
	t.Helper()
	xl := make([][]float64, p)
	iters := make([]int, p)
	conv := make([]bool, p)
	dist.Run(p, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		pc := mk(s)
		x := make([]float64, s.NLoc())
		var prec krylov.Prec
		if pc != nil {
			prec = func(z, r []float64) { pc.Apply(c, z, r) }
		}
		res := krylov.Distributed(c, s, prec, s.B, x, krylov.Options{
			Restart: 20, MaxIters: 500, Tol: 1e-6, Flexible: true,
		})
		xl[c.Rank()] = x
		iters[c.Rank()] = res.Iterations
		conv[c.Rank()] = res.Converged
	})
	for r := 0; r < p; r++ {
		if !conv[r] {
			t.Fatalf("rank %d did not converge", r)
		}
		if iters[r] != iters[0] {
			t.Fatalf("ranks disagree on iterations: %v", iters)
		}
	}
	return iters[0], dsys.Gather(systems, xl)
}

func refSolution(t *testing.T, a *sparse.CSR, b []float64) []float64 {
	t.Helper()
	x := make([]float64, a.Rows)
	res := krylov.SolveCSR(a, nil, b, x, krylov.Options{Restart: 50, MaxIters: 10000, Tol: 1e-11})
	if !res.Converged {
		t.Fatal("reference solve failed")
	}
	return x
}

func checkClose(t *testing.T, got, want []float64, tol float64, label string) {
	t.Helper()
	var d float64
	for i := range got {
		if e := math.Abs(got[i] - want[i]); e > d {
			d = e
		}
	}
	if d > tol {
		t.Fatalf("%s: solution error %v > %v", label, d, tol)
	}
}

func TestAllFourPreconditionersConverge(t *testing.T) {
	const m, p = 17, 4
	systems, a, b := buildPoisson(t, m, p, 1)
	want := refSolution(t, a, b)

	mks := map[string]func(s *dsys.System) Preconditioner{
		"none": func(s *dsys.System) Preconditioner { return nil },
		"Block 1": func(s *dsys.System) Preconditioner {
			pc, err := NewBlock1(s)
			if err != nil {
				t.Errorf("%v", err)
			}
			return pc
		},
		"Block 2": func(s *dsys.System) Preconditioner {
			pc, err := NewBlock2(s, ilu.DefaultILUT())
			if err != nil {
				t.Errorf("%v", err)
			}
			return pc
		},
		"Schur 1": func(s *dsys.System) Preconditioner {
			pc, err := NewSchur1(s, DefaultSchur1())
			if err != nil {
				t.Errorf("%v", err)
			}
			return pc
		},
		"Schur 2": func(s *dsys.System) Preconditioner {
			pc, err := NewSchur2(s, DefaultSchur2())
			if err != nil {
				t.Errorf("%v", err)
			}
			return pc
		},
	}
	iters := map[string]int{}
	for name, mk := range mks {
		it, x := solveWith(t, systems, p, mk)
		checkClose(t, x, want, 2e-4, name)
		iters[name] = it
		t.Logf("%-8s %3d iterations", name, it)
	}
	// Preconditioning must beat no preconditioning, and the Schur
	// variants must need no more iterations than the corresponding block
	// variants (the paper's central qualitative finding).
	for _, name := range []string{"Block 1", "Block 2", "Schur 1", "Schur 2"} {
		if iters[name] >= iters["none"] {
			t.Errorf("%s (%d) not better than unpreconditioned (%d)", name, iters[name], iters["none"])
		}
	}
	if iters["Schur 1"] > iters["Block 2"] {
		t.Errorf("Schur 1 (%d) worse than Block 2 (%d)", iters["Schur 1"], iters["Block 2"])
	}
	if iters["Schur 2"] > iters["Block 1"] {
		t.Errorf("Schur 2 (%d) worse than Block 1 (%d)", iters["Schur 2"], iters["Block 1"])
	}
}

func TestSchurItersStableWithP(t *testing.T) {
	// The paper's headline: Schur 1 iteration counts are "somewhat
	// independent of P" while Block 1 grows. Check the trend on a small
	// grid: going from P=2 to P=8 must not blow up Schur 1.
	const m = 21
	itersAt := func(p int, mk func(s *dsys.System) Preconditioner) int {
		systems, _, _ := buildPoisson(t, m, p, 2)
		it, _ := solveWith(t, systems, p, mk)
		return it
	}
	schur1 := func(s *dsys.System) Preconditioner {
		pc, err := NewSchur1(s, DefaultSchur1())
		if err != nil {
			t.Fatalf("%v", err)
		}
		return pc
	}
	s2 := itersAt(2, schur1)
	s8 := itersAt(8, schur1)
	if s8 > 3*s2+5 {
		t.Errorf("Schur 1 iterations degrade badly with P: %d → %d", s2, s8)
	}
}

func TestBlockApplyIsLocal(t *testing.T) {
	// Block preconditioners must not communicate: stats show zero sends
	// during a pure sequence of Apply calls.
	const p = 4
	systems, _, _ := buildPoisson(t, 13, p, 3)
	stats := dist.Run(p, testMachine(), func(c *dist.Comm) {
		s := systems[c.Rank()]
		pc, err := NewBlock1(s)
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		z := make([]float64, s.NLoc())
		r := make([]float64, s.NLoc())
		for i := range r {
			r[i] = 1
		}
		for k := 0; k < 3; k++ {
			pc.Apply(c, z, r)
		}
	})
	for _, st := range stats {
		if st.MsgsSent != 0 {
			t.Fatalf("rank %d sent %d messages from Block Apply", st.Rank, st.MsgsSent)
		}
	}
}

func TestSchur1ExactComponentsGiveExactPreconditioner(t *testing.T) {
	// With exact factorizations (τ=0, unlimited fill) and enough inner
	// iterations, one application of Schur 1 is essentially a direct
	// solve: the outer FGMRES must converge in very few iterations.
	const p = 3
	systems, a, b := buildPoisson(t, 11, p, 4)
	want := refSolution(t, a, b)
	opts := Schur1Options{
		ILUT:       ilu.ILUTOptions{Tau: 0, LFil: 0},
		SchurIters: 40,
		SchurTol:   1e-12,
		InnerIters: 0, // exact factor solve is already exact
	}
	it, x := solveWith(t, systems, p, func(s *dsys.System) Preconditioner {
		pc, err := NewSchur1(s, opts)
		if err != nil {
			t.Errorf("%v", err)
		}
		return pc
	})
	checkClose(t, x, want, 1e-5, "Schur1-exact")
	if it > 3 {
		t.Fatalf("exact Schur 1 needed %d outer iterations, want ≤ 3", it)
	}
}

func TestSchur2ExpandedSizes(t *testing.T) {
	systems, _, _ := buildPoisson(t, 15, 3, 5)
	for _, s := range systems {
		pc, err := NewSchur2(s, DefaultSchur2())
		if err != nil {
			t.Fatal(err)
		}
		gr, exp := pc.ExpandedSize()
		if gr+exp != s.NLoc() {
			t.Fatalf("rank %d: groups %d + expanded %d != NLoc %d", s.Rank, gr, exp, s.NLoc())
		}
		if exp < s.NIface() {
			t.Fatalf("rank %d: expanded %d smaller than interdomain interface %d", s.Rank, exp, s.NIface())
		}
		if gr == 0 {
			t.Fatalf("rank %d: no grouped unknowns", s.Rank)
		}
	}
}

func TestIdentityPreconditioner(t *testing.T) {
	id := NewIdentity()
	z := make([]float64, 3)
	id.Apply(nil, z, []float64{1, 2, 3})
	if z[1] != 2 {
		t.Fatal("identity broken")
	}
	if id.Name() != "None" {
		t.Fatal("name")
	}
}

// --- additive Schwarz ---

func buildPoissonBoxes(t testing.TB, m, px, py int) ([]*dsys.System, *sparse.CSR, []float64) {
	g := grid.UnitSquareTri(m)
	a, b := fem.AssembleScalar(g, fem.ScalarPDE{
		Diffusion: 1,
		Source:    func(x []float64) float64 { return x[0] * math.Exp(x[1]) },
	})
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			c := g.Coord(n)
			bc[n] = c[0] * math.Exp(c[1])
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	part := BoxPartition(m, px, py)
	p := px * py
	return dsys.Distribute(a, b, part, p), a, b
}

func TestBoxPartitionCoversAll(t *testing.T) {
	m, px, py := 20, 4, 2
	part := BoxPartition(m, px, py)
	sizes := partition.Sizes(part, px*py)
	for q, s := range sizes {
		if s == 0 {
			t.Fatalf("box %d empty", q)
		}
	}
	if im := partition.Imbalance(part, px*py); im > 1.15 {
		t.Fatalf("imbalance %v", im)
	}
}

func TestSchwarzConvergesAndCGCHelps(t *testing.T) {
	const m, px, py = 25, 2, 2
	const p = px * py
	systems, a, b := buildPoissonBoxes(t, m, px, py)
	want := refSolution(t, a, b)

	run := func(cgc bool) (int, []float64) {
		all := make([]*Schwarz, p)
		for r := 0; r < p; r++ {
			sw, err := NewSchwarz(systems[r], a, DefaultSchwarz(m, px, py, cgc))
			if err != nil {
				t.Fatal(err)
			}
			all[r] = sw
		}
		if err := WireHalo(all); err != nil {
			t.Fatal(err)
		}
		return solveWith(t, systems, p, func(s *dsys.System) Preconditioner { return all[s.Rank] })
	}

	itPlain, xPlain := run(false)
	checkClose(t, xPlain, want, 2e-4, "Schwarz")
	itCGC, xCGC := run(true)
	checkClose(t, xCGC, want, 2e-4, "Schwarz+CGC")
	t.Logf("Schwarz: %d iterations without CGC, %d with", itPlain, itCGC)
	if itCGC > itPlain {
		t.Fatalf("CGC made convergence worse: %d vs %d", itCGC, itPlain)
	}
}

func TestSchwarzValidation(t *testing.T) {
	systems, a, _ := buildPoissonBoxes(t, 12, 2, 1)
	if _, err := NewSchwarz(systems[0], a, SchwarzOptions{M: 11, Px: 2, Py: 1, Overlap: 0.05}); err == nil {
		t.Fatal("wrong M accepted")
	}
	if _, err := NewSchwarz(systems[0], a, SchwarzOptions{M: 12, Px: 3, Py: 1, Overlap: 0.05}); err == nil {
		t.Fatal("wrong layout accepted")
	}
}
