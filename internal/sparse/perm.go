package sparse

import "fmt"

// Perm is a permutation of {0, …, n−1}. p[i] = j means "new position i
// holds old index j", i.e. applying p to a vector x yields y[i] = x[p[i]].
type Perm []int

// IdentityPerm returns the identity permutation of length n.
func IdentityPerm(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Inverse returns q with q[p[i]] = i.
func (p Perm) Inverse() Perm {
	q := make(Perm, len(p))
	for i, v := range p {
		q[v] = i
	}
	return q
}

// IsValid reports whether p is a bijection on {0,…,len(p)−1}.
func (p Perm) IsValid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// checkVecDims panics unless both vectors cover the permutation's range.
// Permutation entries are computed indices, so a short argument would be
// a silent out-of-bounds access without this guard.
func (p Perm) checkVecDims(op string, ny, nx int) {
	if ny < len(p) || nx < len(p) {
		panic(fmt.Sprintf("sparse: Perm.%s needs vectors of length ≥ %d, got len(y)=%d, len(x)=%d",
			op, len(p), ny, nx))
	}
}

// ApplyVec gathers x through the permutation: y[i] = x[p[i]].
func (p Perm) ApplyVec(x []float64) []float64 {
	p.checkVecDims("ApplyVec", len(p), len(x))
	y := make([]float64, len(p))
	for i, v := range p {
		y[i] = x[v]
	}
	return y
}

// ApplyVecTo gathers x through the permutation into y.
func (p Perm) ApplyVecTo(y, x []float64) {
	p.checkVecDims("ApplyVecTo", len(y), len(x))
	for i, v := range p {
		y[i] = x[v]
	}
}

// ScatterVecTo scatters x back through the permutation: y[p[i]] = x[i].
// It inverts ApplyVecTo.
func (p Perm) ScatterVecTo(y, x []float64) {
	p.checkVecDims("ScatterVecTo", len(y), len(x))
	for i, v := range p {
		y[v] = x[i]
	}
}

// PermuteSym returns P·A·Pᵀ for the symmetric permutation defined by p:
// entry (i, j) of the result is A(p[i], p[j]). Rows of the result are
// sorted.
func PermuteSym(a *CSR, p Perm) *CSR {
	if a.Rows != a.Cols || len(p) != a.Rows {
		panic(fmt.Sprintf("sparse: PermuteSym needs square matrix and matching perm (A %d×%d, len(p)=%d)",
			a.Rows, a.Cols, len(p)))
	}
	inv := p.Inverse()
	b := NewCSR(a.Rows, a.Cols, a.NNZ())
	for i := 0; i < b.Rows; i++ {
		old := p[i]
		cols, vals := a.Row(old)
		start := len(b.ColIdx)
		for k, j := range cols {
			b.ColIdx = append(b.ColIdx, inv[j])
			b.Val = append(b.Val, vals[k])
		}
		b.RowPtr[i+1] = len(b.ColIdx)
		sort2(b.ColIdx[start:], b.Val[start:])
	}
	return b
}

// sort2 sorts cols ascending, moving vals along. Insertion sort: rows are
// short (tens of entries at most in FEM matrices).
func sort2(cols []int, vals []float64) {
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
}

// Extract returns the submatrix A(rows, cols) in CSR form, where rows and
// cols are index lists into A. Entry (i, j) of the result is
// A(rows[i], cols[j]). Columns of A not listed in cols are dropped.
func Extract(a *CSR, rows, cols []int) *CSR {
	colMap := make(map[int]int, len(cols))
	for newJ, oldJ := range cols {
		colMap[oldJ] = newJ
	}
	b := NewCSR(len(rows), len(cols), 0)
	for i, oldI := range rows {
		cs, vs := a.Row(oldI)
		start := len(b.ColIdx)
		for k, j := range cs {
			if nj, ok := colMap[j]; ok {
				b.ColIdx = append(b.ColIdx, nj)
				b.Val = append(b.Val, vs[k])
			}
		}
		b.RowPtr[i+1] = len(b.ColIdx)
		sort2(b.ColIdx[start:], b.Val[start:])
	}
	return b
}
