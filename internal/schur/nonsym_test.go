package schur

import (
	"math"
	"testing"

	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/ilu"
	"parapre/internal/sparse"
)

// Regression: building the implicit Schur operator on a structurally
// unsymmetric matrix used to fail in buildSendMap ("requests local N,
// which is not an interface unknown") because dsys classified interface
// nodes from outgoing edges only. With the symmetrized classification the
// operator must build and its distributed MatVec must reproduce the dense
// global Schur complement.
func TestImplicitOperatorNonsymmetricPattern(t *testing.T) {
	n := 6
	coo := sparse.NewCOO(n, n, 20)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
	}
	coo.Add(0, 1, -1)
	coo.Add(1, 0, -1)
	coo.Add(2, 3, -1) // one-way cross edge rank0 → rank1
	coo.Add(4, 5, -1)
	coo.Add(5, 4, -1)
	coo.Add(1, 2, -1)
	coo.Add(2, 1, -1)
	coo.Add(4, 3, -1)
	coo.Add(3, 4, -1)
	a := coo.ToCSR()
	b := make([]float64, n)
	part := []int{0, 0, 0, 1, 1, 1}
	systems := dsys.Distribute(a, b, part, 2)

	ops := make([]*Iface, 2)
	for r, s := range systems {
		bf, err := ilu.ILUT(s.BlockB(), ilu.ILUTOptions{Tau: 0, LFil: 0})
		if err != nil {
			t.Fatalf("rank %d: factor B: %v", r, err)
		}
		op, err := NewImplicit(s, bf)
		if err != nil {
			t.Fatalf("rank %d: NewImplicit: %v", r, err)
		}
		ops[r] = op
	}

	// Global interface ordering: rank-by-rank owned interface unknowns.
	var ifaceGlobals []int
	for _, s := range systems {
		ifaceGlobals = append(ifaceGlobals, s.GlobalIDs[s.NInt:]...)
	}
	nI := len(ifaceGlobals)
	if nI == 0 {
		t.Fatal("no interface unknowns")
	}

	// Dense global Schur complement in the same ordering.
	sd := denseSchur(t, a, ifaceGlobals)

	// Apply the distributed operator to each unit vector and compare.
	x := make([]float64, nI)
	for col := 0; col < nI; col++ {
		for i := range x {
			x[i] = 0
		}
		x[col] = 1
		y := make([]float64, nI)
		dist.Run(2, dist.LinuxCluster(), func(c *dist.Comm) {
			r := c.Rank()
			off := 0
			for q := 0; q < r; q++ {
				off += ops[q].N()
			}
			xl := x[off : off+ops[r].N()]
			yl := make([]float64, ops[r].N())
			if err := ops[r].MatVec(c, yl, xl); err != nil {
				t.Errorf("rank %d MatVec: %v", r, err)
				return
			}
			copy(y[off:], yl)
		})
		for i := 0; i < nI; i++ {
			if d := math.Abs(y[i] - sd.At(i, col)); d > 1e-10 {
				t.Fatalf("S[%d,%d]: operator %g, dense %g", i, col, y[i], sd.At(i, col))
			}
		}
	}
}

// denseSchur assembles C − E·B⁻¹·F for the global matrix with the given
// interface unknowns ordered last.
func denseSchur(t *testing.T, a *sparse.CSR, ifaceGlobals []int) *sparse.Dense {
	t.Helper()
	n := a.Rows
	isI := make([]bool, n)
	for _, g := range ifaceGlobals {
		isI[g] = true
	}
	var internals []int
	for i := 0; i < n; i++ {
		if !isI[i] {
			internals = append(internals, i)
		}
	}
	nB := len(internals)
	nI := len(ifaceGlobals)
	ad := a.Dense()
	bb := sparse.NewDense(nB, nB)
	for i, gi := range internals {
		for j, gj := range internals {
			bb.Set(i, j, ad.At(gi, gj))
		}
	}
	lu, err := bb.Factor()
	if err != nil {
		t.Fatalf("dense B factor: %v", err)
	}
	s := sparse.NewDense(nI, nI)
	col := make([]float64, nB)
	for j, gj := range ifaceGlobals {
		for i, gi := range internals {
			col[i] = ad.At(gi, gj) // F column j
		}
		x := lu.Solve(col)
		for i, gi := range ifaceGlobals {
			v := ad.At(gi, gj) // C entry
			for q, gq := range internals {
				v -= ad.At(gi, gq) * x[q]
			}
			s.Set(i, j, v)
		}
	}
	return s
}
