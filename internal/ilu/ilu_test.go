package ilu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parapre/internal/sparse"
)

// tridiag builds the 1D Laplacian [−1 2 −1], whose LU has no fill, so
// ILU(0) is exact on it.
func tridiag(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(i, i-1, -1)
		}
		if i < n-1 {
			coo.Add(i, i+1, -1)
		}
	}
	return coo.ToCSR()
}

// randSPDish builds a random diagonally dominant sparse matrix.
func randSPDish(rng *rand.Rand, n int, density float64) *sparse.CSR {
	coo := sparse.NewCOO(n, n, int(float64(n*n)*density)+n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 8+rng.Float64())
		for j := 0; j < n; j++ {
			if j != i && rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

func solveErr(f *LU, a *sparse.CSR, rng *rand.Rand) float64 {
	n := a.Rows
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.MulVec(xTrue)
	x := make([]float64, n)
	f.Solve(x, b)
	var maxErr float64
	for i := range x {
		if e := math.Abs(x[i] - xTrue[i]); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

func TestILU0ExactOnTridiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := tridiag(50)
	f, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.PivotFixes != 0 {
		t.Fatalf("unexpected pivot fixes: %d", f.PivotFixes)
	}
	if got := solveErr(f, a, rng); got > 1e-10 {
		t.Fatalf("ILU0 not exact on tridiagonal: err %v", got)
	}
}

func TestILU0PatternPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randSPDish(rng, 40, 0.15)
	f, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.NNZ() != a.NNZ() {
		t.Fatalf("ILU0 changed pattern size: %d vs %d", f.NNZ(), a.NNZ())
	}
	for i := 0; i < a.Rows; i++ {
		ac, _ := a.Row(i)
		fc, _ := f.M.Row(i)
		for k := range ac {
			if ac[k] != fc[k] {
				t.Fatalf("pattern differs in row %d", i)
			}
		}
	}
}

func TestILU0MissingDiagonalRejected(t *testing.T) {
	coo := sparse.NewCOO(2, 2, 2)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	if _, err := ILU0(coo.ToCSR()); err == nil {
		t.Fatal("matrix without diagonal accepted")
	}
}

func TestILU0NonSquareRejected(t *testing.T) {
	if _, err := ILU0(sparse.NewCSR(2, 3, 0)); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := ILUT(sparse.NewCSR(2, 3, 0), DefaultILUT()); err == nil {
		t.Fatal("non-square accepted by ILUT")
	}
}

func TestILUTCompleteIsExact(t *testing.T) {
	// Tau=0, unlimited fill: complete LU (no pivoting), exact for
	// diagonally dominant matrices.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(40)
		a := randSPDish(rng, n, 0.2)
		f, err := ILUT(a, ILUTOptions{Tau: 0, LFil: 0})
		if err != nil {
			t.Fatal(err)
		}
		if got := solveErr(f, a, rng); got > 1e-8 {
			t.Fatalf("trial %d (n=%d): complete ILUT err %v", trial, n, got)
		}
	}
}

func TestILUTCompleteProductReproducesA(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randSPDish(rng, 25, 0.25)
	f, err := ILUT(a, ILUTOptions{Tau: 0, LFil: 0})
	if err != nil {
		t.Fatal(err)
	}
	lu := f.Product()
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if math.Abs(lu.At(i, j)-a.At(i, j)) > 1e-9 {
				t.Fatalf("L·U differs from A at (%d,%d): %v vs %v", i, j, lu.At(i, j), a.At(i, j))
			}
		}
	}
}

func TestILUTDropsWithLargeTau(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randSPDish(rng, 60, 0.2)
	loose, err := ILUT(a, ILUTOptions{Tau: 0.2, LFil: 5})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := ILUT(a, ILUTOptions{Tau: 0, LFil: 0})
	if err != nil {
		t.Fatal(err)
	}
	if loose.NNZ() >= tight.NNZ() {
		t.Fatalf("dropping did not reduce fill: %d vs %d", loose.NNZ(), tight.NNZ())
	}
	// Even the loose factorization must reduce the residual of a solve
	// versus doing nothing: check ‖b − A·M⁻¹b‖ < ‖b − A·b‖ style sanity.
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	loose.Solve(x, b)
	r := append([]float64(nil), b...)
	a.MulVecSub(r, x)
	if sparse.Norm2(r) > 0.9*sparse.Norm2(b) {
		t.Fatalf("loose ILUT barely reduces residual: %v vs %v", sparse.Norm2(r), sparse.Norm2(b))
	}
}

func TestILUTLFilRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randSPDish(rng, 50, 0.4)
	lfil := 3
	f, err := ILUT(a, ILUTOptions{Tau: 0, LFil: lfil})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.N(); i++ {
		lCount := f.Diag[i] - f.M.RowPtr[i]
		uCount := f.M.RowPtr[i+1] - f.Diag[i] - 1
		if lCount > lfil || uCount > lfil {
			t.Fatalf("row %d: L=%d U=%d exceed lfil=%d", i, lCount, uCount, lfil)
		}
	}
}

func TestILUTMatchesILU0OnNoFillMatrix(t *testing.T) {
	// On a tridiagonal matrix ILU(0), complete ILUT and dense LU coincide.
	a := tridiag(30)
	f0, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := ILUT(a, ILUTOptions{Tau: 0, LFil: 0})
	if err != nil {
		t.Fatal(err)
	}
	if f0.NNZ() != ft.NNZ() {
		t.Fatalf("nnz differ: %d vs %d", f0.NNZ(), ft.NNZ())
	}
	for k := range f0.M.Val {
		if math.Abs(f0.M.Val[k]-ft.M.Val[k]) > 1e-12 {
			t.Fatalf("factor value %d differs: %v vs %v", k, f0.M.Val[k], ft.M.Val[k])
		}
	}
}

func TestILUTPropertyCompleteEqualsDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		a := randSPDish(rng, n, 0.3)
		fa, err := ILUT(a, ILUTOptions{Tau: 0, LFil: 0})
		if err != nil {
			return false
		}
		df, err := a.Dense().Factor()
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1 := make([]float64, n)
		fa.Solve(x1, b)
		x2 := df.Solve(b)
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-7*(1+math.Abs(x2[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPivotFixKeepsSolveFinite(t *testing.T) {
	// A numerically singular row that still carries information (zero
	// diagonal, nonzero off-diagonals) must not produce Inf/NaN after the
	// pivot fix.
	coo := sparse.NewCOO(3, 3, 6)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 0) // explicit zero pivot
	coo.Add(1, 2, 1) // but the row is not information-free
	coo.Add(2, 2, 2)
	coo.Add(0, 2, 1)
	coo.Add(2, 0, 1)
	a := coo.ToCSR()
	f, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.PivotFixes == 0 {
		t.Fatal("zero pivot not detected")
	}
	x := make([]float64, 3)
	f.Solve(x, []float64{1, 1, 1})
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite solve result %v", x)
		}
	}
}

func TestExtractTrailingExactSchur(t *testing.T) {
	// For a complete factorization of A ordered [B F; E C], the trailing
	// factors must multiply back to the exact Schur complement
	// S = C − E·B⁻¹·F.
	rng := rand.New(rand.NewSource(7))
	n, nB := 18, 12
	a := randSPDish(rng, n, 0.3)
	f, err := ILUT(a, ILUTOptions{Tau: 0, LFil: 0})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ExtractTrailing(f, nB)
	if err != nil {
		t.Fatal(err)
	}
	got := fs.Product()

	// Dense oracle for S.
	idxB := make([]int, nB)
	idxC := make([]int, n-nB)
	for i := 0; i < nB; i++ {
		idxB[i] = i
	}
	for i := nB; i < n; i++ {
		idxC[i-nB] = i
	}
	B := sparse.Extract(a, idxB, idxB).Dense()
	F := sparse.Extract(a, idxB, idxC).Dense()
	E := sparse.Extract(a, idxC, idxB).Dense()
	C := sparse.Extract(a, idxC, idxC).Dense()
	bf, err := B.Factor()
	if err != nil {
		t.Fatal(err)
	}
	ns := n - nB
	for j := 0; j < ns; j++ {
		// Column j of B⁻¹F.
		col := make([]float64, nB)
		for i := 0; i < nB; i++ {
			col[i] = F.At(i, j)
		}
		binvf := bf.Solve(col)
		for i := 0; i < ns; i++ {
			var eb float64
			for k := 0; k < nB; k++ {
				eb += E.At(i, k) * binvf[k]
			}
			want := C.At(i, j) - eb
			if math.Abs(got.At(i, j)-want) > 1e-7*(1+math.Abs(want)) {
				t.Fatalf("S(%d,%d) = %v, want %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestExtractTrailingBounds(t *testing.T) {
	a := tridiag(5)
	f, _ := ILU0(a)
	if _, err := ExtractTrailing(f, -1); err == nil {
		t.Fatal("negative start accepted")
	}
	if _, err := ExtractTrailing(f, 6); err == nil {
		t.Fatal("start > n accepted")
	}
	full, err := ExtractTrailing(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full.NNZ() != f.NNZ() {
		t.Fatal("start=0 must return the whole factorization")
	}
	empty, err := ExtractTrailing(f, 5)
	if err != nil || empty.N() != 0 {
		t.Fatalf("start=n must return empty factorization: %v %v", empty, err)
	}
}

func TestSolveFlops(t *testing.T) {
	a := tridiag(10)
	f, _ := ILU0(a)
	if got := f.SolveFlops(); got != 2*float64(a.NNZ()) {
		t.Fatalf("SolveFlops = %v", got)
	}
}

func BenchmarkILUTFactor(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	a := randSPDish(rng, 500, 0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ILUT(a, DefaultILUT()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkILUSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	a := randSPDish(rng, 1000, 0.01)
	f, err := ILUT(a, DefaultILUT())
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 1000)
	rhs := make([]float64, 1000)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Solve(x, rhs)
	}
}
