package dist

import (
	"fmt"
	"sync"
)

// message is one point-to-point payload with the sender's virtual
// timestamp.
type message struct {
	tag  int
	data []float64
	time float64
}

// World couples P rank goroutines to one machine model. Create it with
// NewWorld and hand each rank its Comm, or use Run to drive everything.
type World struct {
	P       int
	Machine *Machine
	chans   []chan message // chans[from*P+to]
	red     *reducer
}

// NewWorld creates a communicator world of p ranks on machine m.
func NewWorld(p int, m *Machine) *World {
	if p < 1 {
		panic(fmt.Sprintf("dist: world size %d", p))
	}
	w := &World{P: p, Machine: m, chans: make([]chan message, p*p)}
	for i := range w.chans {
		w.chans[i] = make(chan message, 8)
	}
	w.red = newReducer(p)
	return w
}

// Comm is rank r's handle to the world. It is not safe for concurrent use
// by multiple goroutines (exactly like an MPI rank).
type Comm struct {
	w    *World
	rank int

	clock       float64 // virtual seconds since Run started
	computeTime float64 // portion of clock spent in Compute
	flops       float64
	msgsSent    int
	bytesSent   int
}

// Comm returns the handle of rank r.
func (w *World) Comm(r int) *Comm {
	if r < 0 || r >= w.P {
		panic(fmt.Sprintf("dist: rank %d of %d", r, w.P))
	}
	return &Comm{w: w, rank: r}
}

// Rank returns this process's rank in [0, P).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size P.
func (c *Comm) Size() int { return c.w.P }

// MachineName returns the name of the machine profile in use.
func (c *Comm) MachineName() string { return c.w.Machine.Name }

// Compute charges the virtual clock for flops floating-point operations
// of local work. Solver kernels call this with their operation counts.
func (c *Comm) Compute(flops float64) {
	t := c.w.Machine.computeTime(flops)
	c.clock += t
	c.computeTime += t
	c.flops += flops
}

// Send transmits data to rank to with the given tag. The data slice is
// copied, so the caller may reuse its buffer. Send blocks only when the
// channel buffer is full (8 outstanding messages per ordered pair).
func (c *Comm) Send(to, tag int, data []float64) {
	buf := append([]float64(nil), data...)
	c.msgsSent++
	c.bytesSent += 8 * len(buf)
	c.w.chans[c.rank*c.w.P+to] <- message{tag: tag, data: buf, time: c.clock}
}

// Recv receives the next message from rank from, which must carry the
// expected tag (a mismatch is a protocol bug and panics). The receiver's
// clock advances to max(own, sender) + α + β·bytes.
func (c *Comm) Recv(from, tag int) []float64 {
	m := <-c.w.chans[from*c.w.P+c.rank]
	if m.tag != tag {
		panic(fmt.Sprintf("dist: rank %d expected tag %d from %d, got %d", c.rank, tag, from, m.tag))
	}
	if m.time > c.clock {
		c.clock = m.time
	}
	c.clock += c.w.Machine.messageTime(8 * len(m.data))
	return m.data
}

// Stats reports this rank's accounting so far.
type Stats struct {
	Rank        int
	Clock       float64 // total virtual seconds
	ComputeTime float64 // virtual seconds of local work
	CommTime    float64 // Clock − ComputeTime
	Flops       float64
	MsgsSent    int
	BytesSent   int
}

// Stats returns a snapshot of this rank's accounting.
func (c *Comm) Stats() Stats {
	return Stats{
		Rank:        c.rank,
		Clock:       c.clock,
		ComputeTime: c.computeTime,
		CommTime:    c.clock - c.computeTime,
		Flops:       c.flops,
		MsgsSent:    c.msgsSent,
		BytesSent:   c.bytesSent,
	}
}

// Run spawns fn on p rank goroutines over machine m, waits for all to
// finish, and returns the per-rank stats. It is the moral equivalent of
// mpirun.
func Run(p int, m *Machine, fn func(c *Comm)) []Stats {
	w := NewWorld(p, m)
	stats := make([]Stats, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for r := 0; r < p; r++ {
		c := w.Comm(r)
		go func() {
			defer wg.Done()
			fn(c)
			stats[c.rank] = c.Stats()
		}()
	}
	wg.Wait()
	return stats
}

// MaxClock returns the slowest rank's virtual time — the modeled
// wall-clock time of the parallel run.
func MaxClock(stats []Stats) float64 {
	var m float64
	for _, s := range stats {
		if s.Clock > m {
			m = s.Clock
		}
	}
	return m
}
