package fem

import (
	"parapre/internal/grid"
	"parapre/internal/par"
	"parapre/internal/paranoid"
	"parapre/internal/sparse"
)

// Parallel assembly. Elements are independent: each one reads only mesh
// geometry and writes only its own stiffness contributions, so the element
// loop splits into contiguous chunks, one per worker, each filling a
// private triplet buffer. Concatenating the chunk buffers in element order
// reconstructs exactly the triplet sequence the serial loop would have
// produced, and right-hand-side contributions are recorded as deferred
// (index, value) pairs and applied in the same order — so the assembled
// matrix and load vector are bit-identical to the serial assembly for
// every worker count and every chunking.

// femParMinElems is the element count below which assembly stays serial;
// smaller meshes finish faster than the fan-out costs.
const femParMinElems = 2048

// sink collects one worker's share of the assembly output: a private COO
// triplet buffer, deferred right-hand-side contributions, and a centroid
// scratch vector for coefficient and source evaluation.
type sink struct {
	coo  *sparse.COO
	rhsI []int
	rhsV []float64
	x    []float64
}

func (s *sink) add(i, j int, v float64) { s.coo.Add(i, j, v) }

func (s *sink) addRHS(i int, v float64) {
	s.rhsI = append(s.rhsI, i)
	s.rhsV = append(s.rhsV, v)
}

// assemble drives kernel over every element of m and returns the dofs×dofs
// system matrix and load vector. nnzCap is the per-element triplet
// capacity hint (0 when most elements are expected to be skipped, as in
// the row-slab variants).
func assemble(m *grid.Mesh, dofs, nnzCap int, kernel func(e int, s *sink)) (*sparse.CSR, []float64) {
	ne := m.NumElems()
	w := par.Workers()
	if w > ne {
		w = ne
	}
	rhs := make([]float64, dofs)
	if w < 2 || ne < femParMinElems {
		s := &sink{coo: sparse.NewCOO(dofs, dofs, ne*nnzCap), x: make([]float64, m.Dim)}
		for e := 0; e < ne; e++ {
			kernel(e, s)
		}
		for k, i := range s.rhsI {
			rhs[i] += s.rhsV[k]
		}
		a := s.coo.ToCSR()
		a.Validate()
		paranoid.CheckFiniteVec("fem: assembled rhs", rhs)
		return a, rhs
	}

	sinks := make([]*sink, w)
	par.Run(w, func(c int) {
		lo, hi := c*ne/w, (c+1)*ne/w
		s := &sink{coo: sparse.NewCOO(dofs, dofs, (hi-lo)*nnzCap), x: make([]float64, m.Dim)}
		for e := lo; e < hi; e++ {
			kernel(e, s)
		}
		sinks[c] = s
	})

	var total int
	for _, s := range sinks {
		total += s.coo.Len()
	}
	is := make([]int, 0, total)
	js := make([]int, 0, total)
	vs := make([]float64, 0, total)
	for _, s := range sinks {
		is = append(is, s.coo.I...)
		js = append(js, s.coo.J...)
		vs = append(vs, s.coo.V...)
		for k, i := range s.rhsI {
			rhs[i] += s.rhsV[k]
		}
	}
	a := sparse.FromTriplets(dofs, dofs, is, js, vs)
	a.Validate()
	paranoid.CheckFiniteVec("fem: assembled rhs", rhs)
	return a, rhs
}
