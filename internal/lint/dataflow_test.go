package lint

import "testing"

// linkBlocks hand-builds a CFG from an edge list — the dataflow engine
// only consumes Entry/Exit/Succs, so no AST is needed.
func linkBlocks(n int, entry, exit int, edges [][2]int) (*CFG, []*Block) {
	blocks := make([]*Block, n)
	for i := range blocks {
		blocks[i] = &Block{ID: i}
	}
	for _, e := range edges {
		blocks[e[0]].Succs = append(blocks[e[0]].Succs, blocks[e[1]])
	}
	return &CFG{Entry: blocks[entry], Exit: blocks[exit], Blocks: blocks}, blocks
}

// TestForwardDiamondUnion: a fact generated on one branch and killed on
// the other must survive the union join — the may-semantics waitleak
// depends on (one leaking path is a finding).
func TestForwardDiamondUnion(t *testing.T) {
	//     0
	//    / \
	//   1   2
	//    \ /
	//     3
	cfg, blocks := linkBlocks(4, 0, 3, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	transfer := func(b *Block, in Facts) Facts {
		out := in.Clone()
		switch b.ID {
		case 1:
			out["spawn"] = true
		case 2:
			out = Facts{} // the joining branch kills everything
		}
		return out
	}
	res := Forward(cfg, Facts{}, transfer)
	if !res.In[cfg.Exit]["spawn"] {
		t.Errorf("fact generated on one branch must survive the union join")
	}
	if len(res.Out[blocks[2]]) != 0 {
		t.Errorf("killing branch must leave no facts, got %v", res.Out[blocks[2]])
	}
}

// TestForwardCycleTerminates: the fixpoint must terminate on a loop and
// propagate facts around the back edge into the loop head.
func TestForwardCycleTerminates(t *testing.T) {
	// 0 → 1 (head) → 2 (body) → 1, 1 → 3 (exit)
	cfg, blocks := linkBlocks(4, 0, 3, [][2]int{{0, 1}, {1, 2}, {2, 1}, {1, 3}})
	transfer := func(b *Block, in Facts) Facts {
		out := in.Clone()
		if b.ID == 2 {
			out["loop"] = true
		}
		return out
	}
	res := Forward(cfg, Facts{}, transfer)
	if !res.In[blocks[1]]["loop"] {
		t.Errorf("fact must flow around the back edge into the loop head")
	}
	if !res.In[cfg.Exit]["loop"] {
		t.Errorf("fact must escape the loop to Exit")
	}
}

// TestForwardBoundaryAndUnreachable: boundary facts enter at Entry, and
// blocks disconnected from Entry keep empty fact sets.
func TestForwardBoundaryAndUnreachable(t *testing.T) {
	// 0 → 2; block 1 is disconnected (dead code).
	cfg, blocks := linkBlocks(3, 0, 2, [][2]int{{0, 2}, {1, 2}})
	gen := 0
	transfer := func(b *Block, in Facts) Facts {
		gen++
		return in.Clone()
	}
	res := Forward(cfg, NewFacts("boundary"), transfer)
	if !res.In[cfg.Exit]["boundary"] {
		t.Errorf("boundary fact must reach Exit")
	}
	if len(res.In[blocks[1]]) != 0 || len(res.Out[blocks[1]]) != 0 {
		t.Errorf("disconnected block must keep empty fact sets")
	}
}

// TestFactsOps covers the small-set algebra the engine is built on.
func TestFactsOps(t *testing.T) {
	f := NewFacts("a", "b")
	g := f.Clone()
	if !f.Equal(g) {
		t.Fatalf("clone must equal the original")
	}
	g["c"] = true
	if f.Equal(g) {
		t.Fatalf("sets of different size must differ")
	}
	if changed := f.Union(g); !changed || !f["c"] {
		t.Fatalf("union must add the new fact and report change")
	}
	if changed := f.Union(g); changed {
		t.Fatalf("second union must be a no-op")
	}
}
