// Command parapred is the solver-as-a-service daemon: an HTTP/JSON
// gateway over the repository's distributed solver core. Submit a
// problem spec, stream the solve over SSE, cancel mid-iteration; see
// DESIGN.md §18 and the README quickstart.
//
// Usage:
//
//	parapred [-addr :8080] [-workers 2] [-queue-depth 8] [-ckpt-dir DIR]
//
// SIGTERM/SIGINT drains gracefully: admission stops (503), queued and
// running jobs finish, then the listener closes. With -ckpt-dir, jobs
// that checkpoint survive a hard kill and resume on the next start.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parapre/internal/gateway"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent solver workers")
	queueDepth := flag.Int("queue-depth", 8, "per-tenant queue capacity")
	ckptDir := flag.String("ckpt-dir", "", "checkpoint directory (enables kill-and-resume)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "graceful shutdown budget")
	flag.Parse()

	srv, err := gateway.New(gateway.Options{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		CkptDir:    *ckptDir,
	})
	if err != nil {
		log.Fatalf("parapred: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("parapred: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Printf("parapred listening on %s (workers=%d queue-depth=%d)\n",
		ln.Addr(), *workers, *queueDepth)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		log.Fatalf("parapred: %v", err)
	case s := <-sig:
		fmt.Printf("parapred: %v — draining\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("parapred: drain: %v (checkpoints preserved)", err)
	}
	_ = hs.Shutdown(ctx)
}
