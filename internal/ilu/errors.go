package ilu

import (
	"errors"
	"fmt"
)

// ErrZeroPivot is the sentinel all structural-singularity errors wrap.
// Callers test for it with errors.Is(err, ilu.ErrZeroPivot), mirroring the
// krylov.ErrBreakdown convention.
//
// It is returned when a factorization encounters a row that carries no
// numerical information at all (structurally empty, or every stored entry
// exactly zero): no drop tolerance or pivot repair can make the resulting
// U nonsingular, so silently flooring the pivot — the old behavior — would
// hand the solver a factor whose application amplifies the right-hand side
// by 1/pivotRel. Small-but-nonzero pivots are still repaired relative to
// the row norm and counted in PivotFixes/Fixes; only the truly
// information-free case is an error.
var ErrZeroPivot = errors.New("ilu: zero pivot")

// ZeroPivotError identifies the factorization and row where a structurally
// singular pivot was detected. It wraps ErrZeroPivot.
type ZeroPivotError struct {
	Method string // "ILU0", "ILUT", "ILUTP" or "IC0"
	Row    int    // row index in the matrix being factored
}

func (e *ZeroPivotError) Error() string {
	return fmt.Sprintf("ilu: %s: row %d is structurally zero, factorization singular", e.Method, e.Row)
}

// Unwrap makes errors.Is(e, ErrZeroPivot) true.
func (e *ZeroPivotError) Unwrap() error { return ErrZeroPivot }

// zeroPivotErr builds the factorization-side singularity record.
func zeroPivotErr(method string, row int) *ZeroPivotError {
	return &ZeroPivotError{Method: method, Row: row}
}

// ErrBadInput is the sentinel all input-validation errors wrap. Callers
// test for it with errors.Is(err, ilu.ErrBadInput).
var ErrBadInput = errors.New("ilu: bad input")

// InputError reports a structurally invalid input to a factorization or
// sub-factorization extraction: a non-square matrix, a row missing its
// diagonal entry, an out-of-range split point. It wraps ErrBadInput.
type InputError struct {
	Op     string // "ILU0", "ILUT", "ILUTP", "IC0", "ExtractTrailing", "ExtractLeading"
	Detail string
}

func (e *InputError) Error() string { return fmt.Sprintf("ilu: %s: %s", e.Op, e.Detail) }

// Unwrap makes errors.Is(e, ErrBadInput) true.
func (e *InputError) Unwrap() error { return ErrBadInput }

// badInputErr builds an input-validation error.
func badInputErr(op, format string, args ...any) *InputError {
	return &InputError{Op: op, Detail: fmt.Sprintf(format, args...)}
}

// ErrInternal is the sentinel for invariant violations detected inside a
// factorization — a bug in this package, never a property of the input.
var ErrInternal = errors.New("ilu: internal invariant violated")
