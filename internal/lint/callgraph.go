package lint

import (
	"go/ast"
	"go/types"
)

// An approximate static call graph over the loaded packages. Nodes are
// the declared functions and methods of module-internal packages; edges
// are the statically resolvable calls between them. Calls the graph
// cannot resolve to a declaration — through function-typed values
// (parameters, struct fields, locals), interface method dispatch — mark
// the caller HasIndirect instead of growing edges: the interprocedural
// analyzers each state how they treat that boundary (allocfree treats an
// injected operator as the caller's obligation, mirroring the dynamic
// AllocsPerRun tests, which inject non-allocating closures; detaint stops
// propagation there).
//
// Function literals do not get nodes of their own: a FuncLit's body
// belongs to its enclosing declaration, so calls inside a closure are
// edges out of the declaring function — the right attribution for cone
// and taint analyses, where the closure runs on behalf of its creator.

// CallKind distinguishes how a call site transfers control.
type CallKind int

const (
	CallNormal CallKind = iota
	CallDefer           // defer f(...)
	CallGo              // go f(...)
)

// CGEdge is one statically resolved call.
type CGEdge struct {
	Site   *ast.CallExpr
	Kind   CallKind
	Callee *CGNode     // non-nil for module functions with a body
	Ext    *types.Func // non-nil for functions outside the loaded declarations (stdlib)
}

// CGNode is one declared function or method.
type CGNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	Out []CGEdge

	// HasIndirect records at least one call through a function value or
	// an interface method — a call the static graph cannot resolve.
	HasIndirect bool

	// AddressTaken records a use of the function outside call position
	// (stored, passed, compared): it may be invoked through any
	// function-typed value of matching signature.
	AddressTaken bool
}

// CallGraph is the whole-program graph plus the indexes the analyzers
// navigate it with.
type CallGraph struct {
	Nodes map[*types.Func]*CGNode
}

// NodeOf returns the node of fn, or nil when fn has no loaded
// declaration.
func (g *CallGraph) NodeOf(fn *types.Func) *CGNode { return g.Nodes[fn] }

// buildCallGraph constructs the graph over the given packages.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: map[*types.Func]*CGNode{}}

	// First pass: a node per declaration, so edges can resolve forward
	// references and cross-package calls.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Nodes[fn] = &CGNode{Fn: fn, Decl: fd, Pkg: p}
			}
		}
	}

	// Second pass: edges and indirect/address-taken marks.
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				node := g.Nodes[fn]
				if node == nil {
					continue
				}
				g.addEdges(node, p, fd.Body)
			}
		}
	}
	return g
}

// addEdges walks one function body recording call edges on node.
func (g *CallGraph) addEdges(node *CGNode, p *Package, body ast.Node) {
	kindOf := map[*ast.CallExpr]CallKind{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			kindOf[st.Call] = CallDefer
		case *ast.GoStmt:
			kindOf[st.Call] = CallGo
		case *ast.CallExpr:
			g.addCall(node, p, st, kindOf[st])
		}
		return true
	})

	// Address-taken: find function-object uses that are not the Fun of a
	// call expression (and not the name in its own declaration).
	callFuns := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(call.Fun)] = true
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				callFuns[sel.Sel] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || callFuns[id] {
			return true
		}
		if fn, ok := p.Info.Uses[id].(*types.Func); ok {
			if target := g.Nodes[fn]; target != nil {
				target.AddressTaken = true
			}
		}
		return true
	})
}

// addCall resolves one call expression into an edge or an indirect mark.
func (g *CallGraph) addCall(node *CGNode, p *Package, call *ast.CallExpr, kind CallKind) {
	fun := ast.Unparen(call.Fun)

	// Conversions (T(x)) and builtin calls are not call-graph edges.
	if tv, ok := p.Info.Types[fun]; ok && tv.IsType() {
		return
	}

	switch fn := fun.(type) {
	case *ast.Ident:
		switch obj := p.Info.Uses[fn].(type) {
		case *types.Func:
			g.emit(node, call, kind, obj)
			return
		case *types.Builtin, nil:
			return // builtin or unresolved: no edge
		default:
			// A variable or parameter of function type.
			node.HasIndirect = true
			return
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fn]; ok {
			if sel.Kind() == types.MethodVal {
				if types.IsInterface(sel.Recv().Underlying()) {
					node.HasIndirect = true
					return
				}
				if m, ok := sel.Obj().(*types.Func); ok {
					g.emit(node, call, kind, m)
					return
				}
			}
			// Field of function type, or method expression misuse.
			node.HasIndirect = true
			return
		}
		// Package-qualified call: pkg.F(...).
		if obj, ok := p.Info.Uses[fn.Sel].(*types.Func); ok {
			g.emit(node, call, kind, obj)
			return
		}
		node.HasIndirect = true
	case *ast.FuncLit:
		// Immediately invoked literal: its body is already part of this
		// node (FuncLits are attributed to the enclosing declaration).
	default:
		// Call of a call result, index expression, etc.
		node.HasIndirect = true
	}
}

func (g *CallGraph) emit(node *CGNode, call *ast.CallExpr, kind CallKind, callee *types.Func) {
	edge := CGEdge{Site: call, Kind: kind}
	if target := g.Nodes[callee]; target != nil {
		edge.Callee = target
	} else {
		edge.Ext = callee
	}
	node.Out = append(node.Out, edge)
}
