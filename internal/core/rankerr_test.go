package core_test

import (
	"errors"
	"testing"

	"parapre/internal/core"
	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/krylov"
	"parapre/internal/paranoid"
	"parapre/internal/precond"
	"parapre/internal/schur"
)

// skipUnderParanoid skips the NaN-poisoning scenarios: under the
// paranoid tag the injected NaN trips an invariant check inside the
// Arnoldi loop (the fail-fast behavior that tag exists for) before the
// graceful breakdown/aggregation path these tests exercise can run.
func skipUnderParanoid(t *testing.T) {
	t.Helper()
	if paranoid.Enabled {
		t.Skip("paranoid build panics on the injected NaN before aggregation runs")
	}
}

// The ISSUE's regression scenario: a fault plan aimed at rank 2 poisons
// one of its neighbor exchanges with NaN. Every rank's replicated
// recurrence then breaks down, but only rank 2 holds the ExchangeError
// naming the failed link — before the aggregation fix, Result.Err was
// rank 0's bare BreakdownError and the root cause vanished.
func TestFaultOnRank2SurfacesItsExchangeError(t *testing.T) {
	skipUnderParanoid(t)
	prob := buildProblem(t, "tc1-poisson2d", 33)
	cfg := core.DefaultConfig(4, precond.KindBlock2)
	cfg.Faults = &dist.FaultPlan{Seed: 3, CorruptProb: 0.3, TargetRecvRanks: []int{2}}
	res, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || !errors.Is(res.Err, krylov.ErrBreakdown) {
		t.Fatalf("Err = %v, want a breakdown", res.Err)
	}
	var ex *dsys.ExchangeError
	if !errors.As(res.Err, &ex) {
		t.Fatalf("Err = %v: rank 2's exchange root cause was dropped", res.Err)
	}
	if ex.Rank != 2 {
		t.Errorf("exchange error on rank %d, plan targeted rank 2", ex.Rank)
	}
	var rse *core.RankSolveError
	if !errors.As(res.Err, &rse) || rse.Rank != 2 {
		t.Errorf("Err = %v, want the cause attributed to rank 2", res.Err)
	}
}

// Session.Solve shares the aggregation path; the same targeted plan must
// surface the same attributed cause.
func TestSessionFaultOnRank2SurfacesItsExchangeError(t *testing.T) {
	skipUnderParanoid(t)
	prob := buildProblem(t, "tc1-poisson2d", 33)
	cfg := core.DefaultConfig(4, precond.KindBlock2)
	cfg.Faults = &dist.FaultPlan{Seed: 3, CorruptProb: 0.3, TargetRecvRanks: []int{2}}
	sess, err := core.NewSession(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	var ex *dsys.ExchangeError
	if !errors.As(res.Err, &ex) || ex.Rank != 2 {
		t.Fatalf("Err = %v, want rank 2's exchange cause", res.Err)
	}
}

// Targeting every rank must reproduce the untargeted plan bit for bit:
// the targeting mask changes which injections apply, never which are
// drawn, so the fault stream stays aligned.
func TestTargetAllRanksMatchesUntargeted(t *testing.T) {
	prob := buildProblem(t, "tc1-poisson2d", 33)
	run := func(targets []int) *core.Result {
		cfg := core.DefaultConfig(4, precond.KindBlock2)
		cfg.Solver.RecordHistory = true
		cfg.Faults = &dist.FaultPlan{Seed: 1, DelayProb: 0.25, DelayMax: 2e-3,
			CorruptProb: 0.02, TargetRecvRanks: targets}
		cfg.Resilient = true
		res, err := core.Solve(prob, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(nil)
	all := run([]int{0, 1, 2, 3})
	if ref.Iterations != all.Iterations || ref.SolveTime != all.SolveTime {
		t.Fatalf("targeted-all diverged from untargeted: %d/%v vs %d/%v",
			ref.Iterations, ref.SolveTime, all.Iterations, all.SolveTime)
	}
	if len(ref.History) != len(all.History) {
		t.Fatalf("history length %d vs %d", len(ref.History), len(all.History))
	}
	for i := range ref.History {
		if ref.History[i] != all.History[i] {
			t.Fatalf("history[%d]: %v vs %v", i, ref.History[i], all.History[i])
		}
	}
}

// A corrupted exchange during a Schur 1 solve can hit either the
// system-level (dsys) exchange of the outer matvec or the
// preconditioner's interface exchange (schur) inside the inner Schur
// solve. Both must surface as typed, rank-attributed causes in the
// aggregated result — never the panic the legacy schur.Iface.Exchange
// raised on a failed receive.
func TestSchurPrecondFaultSurfacesTypedExchangeError(t *testing.T) {
	skipUnderParanoid(t)
	prob := buildProblem(t, "tc1-poisson2d", 33)
	cfg := core.DefaultConfig(4, precond.KindSchur1)
	cfg.Faults = &dist.FaultPlan{Seed: 5, CorruptProb: 0.3, TargetRecvRanks: []int{2}}
	res, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil {
		t.Fatal("corrupted solve reported no error")
	}
	var dex *dsys.ExchangeError
	var sex *schur.ExchangeError
	switch {
	case errors.As(res.Err, &sex):
		if sex.Rank != 2 {
			t.Errorf("schur exchange error on rank %d, plan targeted rank 2", sex.Rank)
		}
	case errors.As(res.Err, &dex):
		if dex.Rank != 2 {
			t.Errorf("dsys exchange error on rank %d, plan targeted rank 2", dex.Rank)
		}
	default:
		t.Fatalf("Err = %v, want a typed exchange cause", res.Err)
	}
}
