// Package bench defines the paper's experiments (§5): for every table in
// the evaluation there is one Experiment whose Run method regenerates the
// corresponding rows — iteration counts and modeled wall-clock times per
// processor count and preconditioner. Sizes default to laptop-scale; the
// Scale knob (or the -size flag of cmd/ippsbench) moves them toward the
// paper's ~10⁶-unknown originals.
package bench

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"parapre/internal/cases"
	"parapre/internal/ckpt"
	"parapre/internal/core"
	"parapre/internal/dist"
	"parapre/internal/obs"
	"parapre/internal/precond"
)

// Cell is one (preconditioner, P) measurement.
type Cell struct {
	Iters    int
	Restarts int     // outer-solver restart cycles
	Time     float64 // modeled seconds (setup + solve) on the virtual machine
	// Wall is the measured wall-clock seconds of the distributed solve
	// itself (core.Result.Wall). The clock stops before post-processing
	// (solution gather, true-residual recomputation), so walls stay
	// comparable across configurations that differ only there.
	Wall      float64
	Converged bool
	// Note annotates chaos-run outcomes ("deadlock", "crash [1]",
	// "breakdown", "recovered"); empty for ordinary measurements.
	Note string
	// Phases maps phase name → slowest-rank virtual seconds, recorded
	// only when the experiment attaches an observability collector.
	Phases map[string]float64
}

// Row is one line of a paper table: a processor count with one Cell per
// column.
type Row struct {
	P     int
	Cells []Cell
}

// Table is one regenerated paper table.
type Table struct {
	ID      string // experiment id the table came from
	Title   string
	Columns []string // preconditioner names
	Rows    []Row
	N       int // global unknowns
}

// Experiment describes one of the paper's tables.
type Experiment struct {
	ID       string
	Title    string
	CaseName string
	Size     int // default (scaled-down) resolution
	Machine  func() *dist.Machine
	Ps       []int
	Preconds []precond.Kind
	Scheme   core.PartitionScheme

	// Schwarz experiments replace the algebraic preconditioners.
	Schwarz     bool
	SchwarzCGC  []bool // one column per entry
	SchwarzGrid func(p int) (px, py int)

	// Chaos configuration (the -faults / -resilient flags of ippsbench):
	// a fault plan turns every solve into a converge-or-typed-error run
	// whose failures are recorded as cell Notes instead of aborting the
	// experiment.
	Faults    *dist.FaultPlan
	Watchdog  time.Duration
	Resilient bool

	// Observe, when non-nil, is called once per solve with a label of the
	// form "<id>/<precond>/P=<p>" and returns the observability collector
	// to attach to that solve (nil to skip it). Each solve needs its own
	// collector; counters and spans are not reset between solves.
	Observe func(label string) *obs.Collector

	// Checkpoint configuration (the -checkpoint / -checkpoint-every /
	// -restore flags of ippsbench). A checkpoint file belongs to exactly
	// one solve, so these require the sweep to be narrowed to a single
	// cell: one processor count and one preconditioner (use -procs and the
	// experiment's own column set, or a single-column experiment).
	CheckpointEvery int
	CheckpointPath  string
	Restore         *ckpt.Checkpoint
}

// SingleCell resolves the experiment down to the one (problem, config)
// pair a single-cell sweep denotes — the shape the multi-process socket
// transport runs in, where one worker process per rank solves exactly
// one cell. The sweep must already be narrowed to one processor count
// and one preconditioner. CheckpointEvery, Restore and Resilient carry
// over; CheckpointPath does not — the durable file belongs to whoever
// hosts the checkpoint writer (runAlgebraic in-process, the supervisor's
// hub over sockets).
func (e Experiment) SingleCell(size int) (*core.Problem, core.Config, error) {
	if size == 0 {
		size = e.Size
	}
	if e.Schwarz || e.ID == "shape" || len(e.Ps) != 1 || len(e.Preconds) != 1 {
		return nil, core.Config{}, fmt.Errorf("%s: needs a single-cell sweep (one processor count, one preconditioner); narrow with -procs and -precond", e.ID)
	}
	c, err := cases.ByName(e.CaseName)
	if err != nil {
		return nil, core.Config{}, err
	}
	prob := c.Build(size)
	cfg := core.DefaultConfig(e.Ps[0], e.Preconds[0])
	cfg.Machine = e.Machine()
	cfg.Scheme = e.Scheme
	cfg.CheckpointEvery = e.CheckpointEvery
	cfg.Restore = e.Restore
	cfg.Resilient = e.Resilient
	return prob, cfg, nil
}

// checkpointing reports whether any checkpoint/restore option is set.
func (e Experiment) checkpointing() bool {
	return e.CheckpointEvery > 0 || e.CheckpointPath != "" || e.Restore != nil
}

// Experiments returns the full set, one per table in the paper (§5), in
// the paper's order. The IDs match DESIGN.md's experiment index.
func Experiments() []Experiment {
	boxes := func(p int) (int, int) {
		px := 1
		for px*px < p {
			px *= 2
		}
		return px, p / px
	}
	return []Experiment{
		{ID: "tc1-cluster", Title: "Test Case 1 (Poisson 2D), Linux cluster",
			CaseName: "tc1-poisson2d", Size: 129, Machine: dist.LinuxCluster,
			Ps:       []int{2, 4, 8, 16},
			Preconds: clusterColumns()},
		{ID: "tc1-origin", Title: "Test Case 1 (Poisson 2D), Origin 3800",
			CaseName: "tc1-poisson2d", Size: 129, Machine: dist.Origin3800,
			Ps:       []int{8, 16, 32},
			Preconds: []precond.Kind{precond.KindSchur1, precond.KindBlock2}},
		{ID: "tc2-cluster", Title: "Test Case 2 (Poisson 3D), Linux cluster",
			CaseName: "tc2-poisson3d", Size: 21, Machine: dist.LinuxCluster,
			Ps:       []int{2, 4, 8, 16},
			Preconds: clusterColumns()},
		{ID: "tc2-origin", Title: "Test Case 2 (Poisson 3D), Origin 3800",
			CaseName: "tc2-poisson3d", Size: 21, Machine: dist.Origin3800,
			Ps:       []int{8, 16, 32},
			Preconds: []precond.Kind{precond.KindSchur2, precond.KindBlock2}},
		{ID: "tc3-cluster", Title: "Test Case 3 (Poisson, unstructured), Linux cluster",
			CaseName: "tc3-unstructured", Size: 129, Machine: dist.LinuxCluster,
			Ps:       []int{2, 4, 8, 16},
			Preconds: clusterColumns()},
		{ID: "tc4-cluster", Title: "Test Case 4 (heat 3D), Linux cluster",
			CaseName: "tc4-heat3d", Size: 21, Machine: dist.LinuxCluster,
			Ps:       []int{2, 4, 8, 16},
			Preconds: clusterColumns()},
		{ID: "tc5-cluster", Title: "Test Case 5 (convection-diffusion), Linux cluster",
			CaseName: "tc5-convdiff", Size: 129, Machine: dist.LinuxCluster,
			Ps:       []int{2, 4, 8, 16},
			Preconds: clusterColumns()},
		{ID: "tc5-origin", Title: "Test Case 5 (convection-diffusion), Origin 3800",
			CaseName: "tc5-convdiff", Size: 129, Machine: dist.Origin3800,
			Ps:       []int{8, 16, 32},
			Preconds: []precond.Kind{precond.KindSchur1, precond.KindSchur2}},
		{ID: "tc6-cluster", Title: "Test Case 6 (linear elasticity), Linux cluster",
			CaseName: "tc6-elasticity", Size: 49, Machine: dist.LinuxCluster,
			Ps:       []int{2, 4, 8, 16},
			Preconds: []precond.Kind{precond.KindSchur1, precond.KindSchur2, precond.KindMSLR, precond.KindBlock1, precond.KindBlock2}},
		{ID: "shape", Title: "§5.1 Effect of subdomain shape (Test Case 2, P=16): general vs simple partitioning",
			CaseName: "tc2-poisson3d", Size: 21, Machine: dist.LinuxCluster,
			Ps:       []int{16},
			Preconds: clusterColumns()},
		{ID: "jump", Title: "EXTENSION: 1000:1 discontinuous-coefficient Poisson (not in the paper)",
			CaseName: "tc7-jump", Size: 65, Machine: dist.LinuxCluster,
			Ps:       []int{2, 4, 8, 16},
			Preconds: clusterColumns()},
		{ID: "schwarz", Title: "§5.2 Additive Schwarz on Test Case 1 (with and without coarse-grid corrections)",
			CaseName: "tc1-poisson2d", Size: 129, Machine: dist.LinuxCluster,
			Ps:          []int{4, 16},
			Schwarz:     true,
			SchwarzCGC:  []bool{false, true},
			SchwarzGrid: boxes},
	}
}

func clusterColumns() []precond.Kind {
	return []precond.Kind{precond.KindSchur1, precond.KindSchur2, precond.KindMSLR, precond.KindBlock1, precond.KindBlock2}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// Run executes the experiment at the given size (0 ⇒ the experiment's
// default) and returns the regenerated table(s). The "shape" experiment
// returns two tables (general and simple partitioning).
func (e Experiment) Run(size int) ([]Table, error) {
	if size == 0 {
		size = e.Size
	}
	c, err := cases.ByName(e.CaseName)
	if err != nil {
		return nil, err
	}
	prob := c.Build(size)

	if e.checkpointing() {
		if e.Schwarz || e.ID == "shape" || len(e.Ps) != 1 || len(e.Preconds) != 1 {
			return nil, fmt.Errorf("%s: checkpoint/restore needs a single-cell sweep (one processor count, one preconditioner); narrow with -procs", e.ID)
		}
	}
	if e.Schwarz {
		t, err := e.runSchwarz(prob, size)
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	}
	if e.ID == "shape" {
		var out []Table
		for _, scheme := range []core.PartitionScheme{core.PartitionGeneral, core.PartitionSimple} {
			name := "general grid partitioning"
			if scheme == core.PartitionSimple {
				name = "simple grid partitioning"
			}
			t, err := e.runAlgebraic(prob, scheme)
			if err != nil {
				return nil, err
			}
			t.Title = e.Title + " — " + name
			out = append(out, t)
		}
		return out, nil
	}
	t, err := e.runAlgebraic(prob, e.Scheme)
	if err != nil {
		return nil, err
	}
	return []Table{t}, nil
}

func (e Experiment) runAlgebraic(prob *core.Problem, scheme core.PartitionScheme) (Table, error) {
	t := Table{ID: e.ID, Title: e.Title, N: prob.A.Rows}
	for _, k := range e.Preconds {
		t.Columns = append(t.Columns, string(k))
	}
	for _, p := range e.Ps {
		row := Row{P: p}
		for _, k := range e.Preconds {
			cfg := core.DefaultConfig(p, k)
			cfg.Machine = e.Machine()
			cfg.Scheme = scheme
			cfg.CheckpointEvery = e.CheckpointEvery
			cfg.CheckpointPath = e.CheckpointPath
			cfg.Restore = e.Restore
			e.applyChaos(&cfg)
			cfg.Collector = e.observe(fmt.Sprintf("%s/%s/P=%d", e.ID, k, p))
			start := time.Now()
			res, err := core.Solve(prob, cfg)
			if err != nil {
				note, typed := faultNote(err)
				if !e.chaos() || !typed {
					return t, fmt.Errorf("%s/%s P=%d: %w", e.ID, k, p, err)
				}
				row.Cells = append(row.Cells, Cell{Note: note, Wall: time.Since(start).Seconds()})
				continue
			}
			row.Cells = append(row.Cells, newCell(res))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func (e Experiment) runSchwarz(prob *core.Problem, size int) (Table, error) {
	t := Table{ID: e.ID, Title: e.Title, N: prob.A.Rows}
	for _, cgc := range e.SchwarzCGC {
		if cgc {
			t.Columns = append(t.Columns, "AddSchwarz+CGC")
		} else {
			t.Columns = append(t.Columns, "AddSchwarz")
		}
	}
	for _, p := range e.Ps {
		px, py := e.SchwarzGrid(p)
		row := Row{P: p}
		for _, cgc := range e.SchwarzCGC {
			cfg := core.DefaultConfig(p, precond.KindNone)
			cfg.Machine = e.Machine()
			sw := precond.DefaultSchwarz(size, px, py, cgc)
			cfg.Schwarz = &sw
			e.applyChaos(&cfg)
			cfg.Collector = e.observe(fmt.Sprintf("%s/schwarz cgc=%v/P=%d", e.ID, cgc, p))
			start := time.Now()
			res, err := core.Solve(prob, cfg)
			if err != nil {
				note, typed := faultNote(err)
				if !e.chaos() || !typed {
					return t, fmt.Errorf("%s cgc=%v P=%d: %w", e.ID, cgc, p, err)
				}
				row.Cells = append(row.Cells, Cell{Note: note, Wall: time.Since(start).Seconds()})
				continue
			}
			row.Cells = append(row.Cells, newCell(res))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// chaos reports whether the experiment runs under fault injection or a
// watchdog (the converge-or-typed-error regime).
func (e Experiment) chaos() bool { return e.Faults != nil || e.Watchdog > 0 }

// applyChaos copies the experiment's chaos configuration into one solve
// config; a nil plan leaves cfg untouched (bit-identical baseline runs).
func (e Experiment) applyChaos(cfg *core.Config) {
	cfg.Faults = e.Faults
	cfg.Watchdog = e.Watchdog
	cfg.Resilient = e.Resilient
}

// observe asks the experiment's Observe hook for the collector of one
// labeled solve; nil hook (the default) means no observability.
func (e Experiment) observe(label string) *obs.Collector {
	if e.Observe == nil {
		return nil
	}
	return e.Observe(label)
}

// newCell converts one solve result into a table cell, annotating chaos
// outcomes: a typed solver error becomes "breakdown", a solve saved by
// the escalation ladder becomes "recovered".
func newCell(res *core.Result) Cell {
	c := Cell{
		Iters:     res.Iterations,
		Restarts:  res.Restarts,
		Time:      res.SetupTime + res.SolveTime,
		Wall:      res.Wall,
		Converged: res.Converged,
	}
	if len(res.PhaseBreakdown) > 0 {
		c.Phases = make(map[string]float64, len(res.PhaseBreakdown))
		for _, ps := range res.PhaseBreakdown {
			c.Phases[ps.Phase] = ps.MaxSeconds
		}
	}
	if res.Err != nil {
		c.Note = "breakdown"
	}
	if res.Recovery != nil && res.Recovery.Recovered {
		c.Note = "recovered"
	}
	return c
}

// faultNote classifies a chaos-run failure for table annotation. Only the
// typed runtime outcomes qualify; anything else (including an escaped
// rank panic, which is a bug) fails the experiment.
func faultNote(err error) (string, bool) {
	var de *dist.DeadlockError
	var ce *dist.CrashError
	var pc *dist.PeerCrashedError
	var tm *dist.TagMismatchError
	switch {
	case errors.As(err, &de):
		return "deadlock", true
	case errors.As(err, &ce):
		return fmt.Sprintf("crash %v", ce.Ranks), true
	case errors.As(err, &pc):
		return fmt.Sprintf("crash [%d]", pc.Peer), true
	case errors.As(err, &tm):
		return "tag mismatch", true
	}
	return "", false
}

// WriteMarkdown renders the table as a GitHub-flavored Markdown table
// with "#itr / time" cells, for pasting into EXPERIMENTS.md.
func (t Table) WriteMarkdown(w io.Writer) {
	fmt.Fprintf(w, "**%s** (N = %d)\n\n", t.Title, t.N)
	fmt.Fprint(w, "| P |")
	for _, c := range t.Columns {
		fmt.Fprintf(w, " %s |", c)
	}
	fmt.Fprint(w, "\n|---|")
	for range t.Columns {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %d |", r.P)
		for _, c := range r.Cells {
			switch {
			case c.Converged && c.Note != "":
				fmt.Fprintf(w, " %d / %.4fs (%s) |", c.Iters, c.Time, c.Note)
			case c.Converged:
				fmt.Fprintf(w, " %d / %.4fs |", c.Iters, c.Time)
			case c.Note != "":
				fmt.Fprintf(w, " %s |", c.Note)
			default:
				fmt.Fprint(w, " n.c. |")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// WritePhases renders the per-phase virtual-time breakdown of every cell
// that recorded one (Experiment.Observe set): one line per (P, column)
// pair, phases sorted by descending slowest-rank seconds. Cells without a
// breakdown are skipped.
func (t Table) WritePhases(w io.Writer) {
	any := false
	for _, r := range t.Rows {
		for _, c := range r.Cells {
			if len(c.Phases) > 0 {
				any = true
			}
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(w, "%s — per-phase modeled time (slowest rank, seconds)\n", t.Title)
	for _, r := range t.Rows {
		for ci, c := range r.Cells {
			if len(c.Phases) == 0 {
				continue
			}
			name := ""
			if ci < len(t.Columns) {
				name = t.Columns[ci]
			}
			names := make([]string, 0, len(c.Phases))
			for ph := range c.Phases {
				names = append(names, ph)
			}
			sort.Slice(names, func(i, j int) bool {
				//lint:ignore floatcmp exact tie-break for a deterministic sort order, not a numeric test
				if c.Phases[names[i]] != c.Phases[names[j]] {
					return c.Phases[names[i]] > c.Phases[names[j]]
				}
				return names[i] < names[j]
			})
			fmt.Fprintf(w, "  P=%-3d %-16s", r.P, name)
			for _, ph := range names {
				fmt.Fprintf(w, " %s=%.4f", ph, c.Phases[ph])
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
}

// Write renders the table in the paper's layout.
func (t Table) Write(w io.Writer) {
	fmt.Fprintf(w, "%s  (N = %d unknowns)\n", t.Title, t.N)
	fmt.Fprintf(w, "%-5s", "P")
	for _, c := range t.Columns {
		fmt.Fprintf(w, " | %-16s", c)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-5s", "")
	for range t.Columns {
		fmt.Fprintf(w, " | %6s %9s", "#itr", "time(s)")
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 6+len(t.Columns)*19))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-5d", r.P)
		for _, c := range r.Cells {
			switch {
			case c.Converged:
				fmt.Fprintf(w, " | %6d %9.4f", c.Iters, c.Time)
			case c.Note != "":
				fmt.Fprintf(w, " | %16s", c.Note)
			default:
				fmt.Fprintf(w, " | %6s %9s", "n.c.", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
