package mmio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrix asserts the parser never panics and that anything it
// accepts can be written back and re-read to an equal matrix.
func FuzzReadMatrix(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.5\n2 2 -3\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 2\n3 1 -1\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n2 1\n")
	f.Add("%%MatrixMarket matrix coordinate integer skew-symmetric\n2 2 1\n2 1 4\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 0 0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n999999999 999999999 1\n1 1 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		// Guard against adversarial header sizes allocating huge buffers:
		// the parser itself must reject them, not OOM. Cap input length.
		if len(in) > 1<<16 {
			return
		}
		a, err := ReadMatrix(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := a.CheckValid(); err != nil {
			t.Fatalf("accepted invalid matrix: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteMatrix(&buf, a); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		b, err := ReadMatrix(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if !a.Equal(b) {
			t.Fatal("round trip changed the matrix")
		}
	})
}

// FuzzReadVector asserts the vector parser never panics.
func FuzzReadVector(f *testing.F) {
	f.Add("%%MatrixMarket matrix array real general\n2 1\n1.0\n-2\n")
	f.Add("%%MatrixMarket matrix array real general\n0 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return
		}
		v, err := ReadVector(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteVector(&buf, v); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
	})
}
