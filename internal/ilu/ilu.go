// Package ilu implements the incomplete LU factorizations used by every
// preconditioner in the paper: zero fill-in ILU(0), the dual-threshold
// ILUT(τ, lfil) of Saad, the forward/backward substitution that applies
// them, and the extraction of approximate Schur-complement factors from
// the trailing block of an internal-first-ordered factorization (§2: if
// A_i = L_i·U_i with the interface unknowns ordered last, then L_S·U_S
// approximates the local Schur complement S_i).
package ilu

import (
	"math"
	"sort"
	"sync/atomic"

	"parapre/internal/par"
	"parapre/internal/sparse"
)

// LU holds an incomplete factorization A ≈ L·U with unit-diagonal L. Both
// factors are stored in one row-sorted CSR: within row i, columns < i
// belong to L (without the implicit unit diagonal) and columns ≥ i belong
// to U. Diag[i] indexes the diagonal entry of row i in M.Val.
type LU struct {
	M    *sparse.CSR
	Diag []int
	// PivotFixes counts small pivots that were replaced during the
	// factorization to keep it nonsingular (0 for well-behaved matrices).
	PivotFixes int

	// lvl caches the level schedule of the triangular sweeps — see
	// levels.go. Lazily built, atomically published (factors may be
	// shared read-only), immutable once stored.
	lvl atomic.Pointer[triSched]
}

// N returns the dimension of the factored matrix.
func (f *LU) N() int { return f.M.Rows }

// NNZ returns the number of stored factor entries.
func (f *LU) NNZ() int { return f.M.NNZ() }

// SolveFlops returns the flop count of one Solve application, for the
// virtual-time accounting in the distributed solver. The model charges 2
// flops per stored factor entry — the convention every factor type in
// this package follows. The exact kernel count is 2·NNZ(M) − n (each
// off-diagonal entry costs a multiply and a subtract; each diagonal entry
// costs one divide), so the model over-counts by exactly one flop per
// row; the round 2·NNZ form is kept because the committed goldens and
// EXPERIMENTS.md tables were produced with it. TestLUSolveFlopsModel pins
// both the model and its distance from the exact count.
func (f *LU) SolveFlops() float64 { return 2 * float64(f.M.NNZ()) }

// Solve computes x = U⁻¹·L⁻¹·b. x and b may alias. When the level
// schedule is enabled and profitable (see levels.go) the two sweeps run
// level-parallel across the par worker pool; the result is bit-identical
// to the serial sweeps at any worker count.
//
//lint:allocfree steady state once the level schedule is cached; verified dynamically by TestLUSolveZeroAllocSteadyState
func (f *LU) Solve(x, b []float64) {
	if x == nil {
		panic("ilu: nil output")
	}
	if s := f.sched(); s != nil {
		f.solveScheduled(x, b, s)
		return
	}
	f.forwardSerial(x, b)
	f.backwardSerial(x)
}

// forwardSerial solves L·x = b in place (unit diagonal, entries strictly
// below the diagonal).
func (f *LU) forwardSerial(x, b []float64) {
	n := f.N()
	rp, ci, vv := f.M.RowPtr, f.M.ColIdx, f.M.Val
	diag := f.Diag
	for i := 0; i < n; i++ {
		s := b[i]
		d := diag[i]
		row := vv[rp[i]:d]
		cols := ci[rp[i]:d]
		for k, v := range row {
			s -= v * x[cols[k]]
		}
		x[i] = s
	}
}

// backwardSerial solves U·x = x in place (diagonal at Diag[i]).
func (f *LU) backwardSerial(x []float64) {
	n := f.N()
	rp, ci, vv := f.M.RowPtr, f.M.ColIdx, f.M.Val
	diag := f.Diag
	for i := n - 1; i >= 0; i-- {
		d := diag[i]
		s := x[i]
		row := vv[d+1 : rp[i+1]]
		cols := ci[d+1 : rp[i+1]]
		for k, v := range row {
			s -= v * x[cols[k]]
		}
		x[i] = s / vv[d]
	}
}

// solveScheduled runs the level-scheduled sweeps. Each direction falls
// back to its serial sweep when its own level structure is too narrow
// (unless the mode forces scheduling). Writing x[i] from exactly one
// worker per row keeps the aliasing contract: a row reads only its own
// b[i] and the x entries of strictly earlier levels.
func (f *LU) solveScheduled(x, b []float64, s *triSched) {
	rp, ci, vv := f.M.RowPtr, f.M.ColIdx, f.M.Val
	diag := f.Diag
	w := par.Workers()
	force := levelMode() == LevelForce
	if force || s.fwd.profitable(w) {
		rows := s.fwd.rows
		par.ForLevels(s.fwd.ptr, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				i := rows[t]
				acc := b[i]
				d := diag[i]
				row := vv[rp[i]:d]
				cols := ci[rp[i]:d]
				for k, v := range row {
					acc -= v * x[cols[k]]
				}
				x[i] = acc
			}
		})
	} else {
		f.forwardSerial(x, b)
	}
	if force || s.bwd.profitable(w) {
		rows := s.bwd.rows
		par.ForLevels(s.bwd.ptr, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				i := rows[t]
				d := diag[i]
				acc := x[i]
				row := vv[d+1 : rp[i+1]]
				cols := ci[d+1 : rp[i+1]]
				for k, v := range row {
					acc -= v * x[cols[k]]
				}
				x[i] = acc / vv[d]
			}
		})
	} else {
		f.backwardSerial(x)
	}
}

// pivotFloor replaces near-zero pivots: |pivot| is raised to
// pivotRel·rowNorm (keeping sign), so the backward solve cannot blow up on
// structurally deficient subdomain blocks (e.g. rows eliminated by
// Dirichlet handling).
const pivotRel = 1e-8

func fixPivot(p, rowNorm float64, fixes *int) float64 {
	floor := pivotRel * rowNorm
	if floor == 0 {
		floor = pivotRel
	}
	if math.Abs(p) >= floor {
		return p
	}
	*fixes++
	if p < 0 {
		return -floor
	}
	return floor
}

// ILU0 computes the zero fill-in incomplete factorization: the factors
// jointly keep exactly the sparsity pattern of a. a must be square with a
// fully nonzero-pattern diagonal (FEM matrices after Dirichlet handling
// always have one).
func ILU0(a *sparse.CSR) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, badInputErr("ILU0", "non-square %d×%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	m := a.Clone()
	diag := make([]int, n)
	for i := 0; i < n; i++ {
		cols, _ := m.Row(i)
		if len(cols) == 0 {
			// A structurally empty row is a singular matrix, not a pattern
			// deficiency: report it as the typed zero-pivot error.
			return nil, zeroPivotErr("ILU0", i)
		}
		k := sort.SearchInts(cols, i)
		if k == len(cols) || cols[k] != i {
			return nil, badInputErr("ILU0", "row %d has no diagonal entry", i)
		}
		diag[i] = m.RowPtr[i] + k
	}
	f := &LU{M: m, Diag: diag}
	// pos[c] = index of column c within the current row, or -1.
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i := 0; i < n; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		var rowNorm float64
		for k := lo; k < hi; k++ {
			pos[m.ColIdx[k]] = k
			rowNorm += math.Abs(m.Val[k])
		}
		if rowNorm == 0 {
			return nil, zeroPivotErr("ILU0", i)
		}
		rowNorm /= float64(hi - lo)
		for k := lo; k < diag[i]; k++ {
			kk := m.ColIdx[k] // eliminate with pivot row kk < i
			piv := m.Val[diag[kk]]
			lik := m.Val[k] / piv
			m.Val[k] = lik
			// Subtract lik · U-part of row kk, restricted to our pattern.
			for kj := diag[kk] + 1; kj < m.RowPtr[kk+1]; kj++ {
				j := m.ColIdx[kj]
				if p := pos[j]; p >= 0 {
					m.Val[p] -= lik * m.Val[kj]
				}
			}
		}
		m.Val[diag[i]] = fixPivot(m.Val[diag[i]], rowNorm, &f.PivotFixes)
		for k := lo; k < hi; k++ {
			pos[m.ColIdx[k]] = -1
		}
	}
	f.prepLevels()
	return f, nil
}
