package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses `func f() { <body> }` and returns its block, for CFG
// tests that need no type information (NewCFG accepts a nil package;
// constant pruning is then off, which these shapes do not use).
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "f.go", src, 0)
	if err != nil {
		t.Fatalf("parsing body: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// blockOf returns the unique block whose statements satisfy pred.
func blockOf(t *testing.T, cfg *CFG, pred func(ast.Node) bool) *Block {
	t.Helper()
	var found *Block
	for _, b := range cfg.Blocks {
		for _, s := range b.Stmts {
			if pred(s) {
				if found != nil && found != b {
					t.Fatalf("predicate matches several blocks")
				}
				found = b
			}
		}
	}
	if found == nil {
		t.Fatalf("predicate matches no block")
	}
	return found
}

func isGoStmt(n ast.Node) bool   { _, ok := n.(*ast.GoStmt); return ok }
func isSendStmt(n ast.Node) bool { _, ok := n.(*ast.SendStmt); return ok }

// TestCFGLoopCycle checks that a for loop produces a genuine cycle: the
// body block reaches the head and the head reaches the body.
func TestCFGLoopCycle(t *testing.T) {
	cfg := NewCFG(nil, parseBody(t, `
	for i := 0; i < 10; i++ {
		go work()
	}
	ch <- 1`))

	body := blockOf(t, cfg, isGoStmt)
	after := blockOf(t, cfg, isSendStmt)

	if !reaches(body, body) {
		t.Errorf("loop body does not reach itself: no back edge")
	}
	if !reaches(body, after) {
		t.Errorf("loop body does not reach the statement after the loop")
	}
	if !cfg.Reachable()[after] {
		t.Errorf("statement after a non-constant loop must be reachable")
	}
}

// reaches reports whether to is reachable from from via at least one edge.
func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		for _, s := range b.Succs {
			if s == to {
				return true
			}
			if !seen[s] {
				seen[s] = true
				if walk(s) {
					return true
				}
			}
		}
		return false
	}
	return walk(from)
}

// TestCFGReturnTerminates checks that return edges to Exit and
// disconnects the code after it.
func TestCFGReturnTerminates(t *testing.T) {
	cfg := NewCFG(nil, parseBody(t, `
	return
	go dead()`))

	reach := cfg.Reachable()
	dead := blockOf(t, cfg, isGoStmt)
	if reach[dead] {
		t.Errorf("code after return must be unreachable")
	}
	if !reach[cfg.Exit] {
		t.Errorf("Exit must be reachable through the return")
	}
}

// TestCFGPanicTerminates checks that a panic statement ends its block
// with no fall-through edge.
func TestCFGPanicTerminates(t *testing.T) {
	cfg := NewCFG(nil, parseBody(t, `
	panic("boom")
	go dead()`))

	if cfg.Reachable()[blockOf(t, cfg, isGoStmt)] {
		t.Errorf("code after panic must be unreachable")
	}
}

// TestCFGDefersCollected checks that deferred calls are recorded for the
// every-exit semantics waitleak relies on, including defers after
// branches.
func TestCFGDefersCollected(t *testing.T) {
	cfg := NewCFG(nil, parseBody(t, `
	defer a()
	if cond {
		defer b()
	}
	return`))

	if len(cfg.Defers) != 2 {
		t.Fatalf("collected %d defers, want 2", len(cfg.Defers))
	}
}

// TestCFGIfElseJoin checks the diamond shape: both branches reachable,
// both rejoining before Exit.
func TestCFGIfElseJoin(t *testing.T) {
	cfg := NewCFG(nil, parseBody(t, `
	if cond {
		go left()
	} else {
		ch <- 1
	}
	return`))

	reach := cfg.Reachable()
	left := blockOf(t, cfg, isGoStmt)
	right := blockOf(t, cfg, isSendStmt)
	if !reach[left] || !reach[right] {
		t.Fatalf("both branches of a non-constant if must be reachable")
	}
	ret := blockOf(t, cfg, func(n ast.Node) bool { _, ok := n.(*ast.ReturnStmt); return ok })
	if !reaches(left, ret) || !reaches(right, ret) {
		t.Errorf("both branches must rejoin at the statement after the if")
	}
}
