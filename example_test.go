package parapre_test

import (
	"fmt"

	"parapre"
)

// ExampleSolve reproduces a single cell of the paper's Test-Case-1 table:
// iteration count of the Schur 1 preconditioner at P = 4.
func ExampleSolve() {
	prob := parapre.BuildCase("tc1-poisson2d", 33)
	cfg := parapre.DefaultConfig(4, parapre.Schur1)
	res, err := parapre.Solve(prob, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Converged, res.Iterations)
	// Output: true 7
}

// ExampleNewSession shows the setup-once/solve-many pattern for implicit
// time stepping: the second solve reuses the partition and the factored
// preconditioners.
func ExampleNewSession() {
	prob := parapre.BuildCase("tc1-poisson2d", 17)
	sess, err := parapre.NewSession(prob, parapre.DefaultConfig(2, parapre.Block2))
	if err != nil {
		panic(err)
	}
	r1, _ := sess.Solve(nil) // the case's own right-hand side
	b2 := make([]float64, prob.A.Rows)
	for i := range b2 {
		b2[i] = 1
	}
	r2, _ := sess.Solve(b2) // a different right-hand side, same setup
	fmt.Println(r1.Converged, r2.Converged)
	// Output: true true
}

// ExampleExperimentByID regenerates one row of a paper table.
func ExampleExperimentByID() {
	e, err := parapre.ExperimentByID("shape")
	if err != nil {
		panic(err)
	}
	e.Ps = []int{4}
	tables, err := e.Run(9) // tiny size for the example
	if err != nil {
		panic(err)
	}
	fmt.Println(len(tables), tables[0].Columns[0])
	// Output: 2 Schur 1
}
