package verify

import (
	"fmt"

	"parapre/internal/cases"
	"parapre/internal/core"
	"parapre/internal/ilu"
	"parapre/internal/partition"
)

// verifySizes maps each paper case to the smallest resolution whose
// matrix the dense oracles can afford (the mathematics being checked is
// resolution-independent).
var verifySizes = map[int]int{
	1: 7, // 49 unknowns
	2: 4, // 64
	3: 8, // plate-with-hole minimum resolution
	4: 4,
	5: 7,
	6: 4, // 32 dof (2 per node)
	7: 7,
}

// checkPaperCases runs the factorization, Schur and dist-vs-seq oracles
// over the paper's assembled test cases — real FEM matrices with
// Dirichlet-modified rows, SUPG stabilization and multiple dofs per node,
// none of which the random generators produce.
func checkPaperCases(cfg Config) []Violation {
	var out []Violation
	for _, tc := range cases.All() {
		if cfg.Quick && tc.ID != 1 && tc.ID != 5 {
			continue
		}
		size, ok := verifySizes[tc.ID]
		if !ok {
			out = append(out, Violation{"paper-cases", fmt.Sprintf("case %s has no verify size", tc.Name), ""})
			continue
		}
		prob := tc.Build(size)
		a := prob.A
		n := a.Rows
		cfg.logf("  case %-18s n=%d nnz=%d", tc.Name, n, a.NNZ())
		tag := func(extra string) string {
			s := fmt.Sprintf("case=%s size=%d", tc.Name, size)
			if extra != "" {
				s += " " + extra
			}
			return s
		}

		// Complete factorization reproduces the case matrix and its solve
		// matches dense LU.
		ad := a.Dense()
		scale := denseScale(ad)
		f, err := ilu.ILUT(a, completeOpts)
		if err != nil {
			out = append(out, Violation{"paper-cases", fmt.Sprintf("complete ILUT: %v", err), tag("")})
			continue
		}
		if d := denseMaxDiff(f.Product(), ad); d > 1e-8*(1+scale) {
			out = append(out, Violation{"paper-cases",
				fmt.Sprintf("complete ILUT product differs from A by %g", d), tag("")})
		}
		lu, err := ad.Factor()
		if err != nil {
			out = append(out, Violation{"paper-cases", fmt.Sprintf("dense factor: %v", err), tag("")})
			continue
		}
		x := make([]float64, n)
		f.Solve(x, prob.B)
		xd := lu.Solve(prob.B)
		if d := maxAbsDiff(x, xd); d > 1e-7*(1+maxAbs(xd)) {
			out = append(out, Violation{"paper-cases",
				fmt.Sprintf("complete ILUT solve differs from dense solve by %g", d), tag("")})
		}

		// Trailing factors at an interior split reproduce the exact Schur
		// complement of the case matrix.
		k := 3 * n / 4
		trail, err := ilu.ExtractTrailing(f, k)
		if err != nil {
			out = append(out, Violation{"paper-cases", fmt.Sprintf("ExtractTrailing: %v", err), tag("")})
		} else {
			iface := make([]int, n-k)
			for i := range iface {
				iface[i] = k + i
			}
			sd, err := denseSchurRef(a, iface)
			if err != nil {
				out = append(out, Violation{"paper-cases", err.Error(), tag(fmt.Sprintf("k=%d", k))})
			} else if d := denseMaxDiff(trail.Product(), sd); d > 1e-7*(1+scale) {
				out = append(out, Violation{"paper-cases",
					fmt.Sprintf("trailing product differs from dense Schur complement by %g", d), tag(fmt.Sprintf("k=%d", k))})
			}
		}

		// Distributed FGMRES on the real partitioned case must replay
		// sequentially: identical iterations, histories within 1e-12.
		ps := []int{2}
		if !cfg.Quick {
			ps = append(ps, 4)
		}
		for _, p := range ps {
			part, err := partition.General(core.PatternGraph(a), p, cfg.Seed)
			if err != nil {
				out = append(out, Violation{"paper-cases",
					fmt.Sprintf("partition failed: %v", err), tag(fmt.Sprintf("P=%d", p))})
				continue
			}
			vs := distVsSeqOne(distSolveCases()[2], a, part, n, p, cfg.Seed, "case-"+tc.Name)
			for i := range vs {
				vs[i].Check = "paper-cases"
				vs[i].Repro = tag(vs[i].Repro)
			}
			out = append(out, vs...)
		}
	}
	return out
}
