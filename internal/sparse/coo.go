package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format assembly buffer. Finite-element assembly adds
// many small contributions at repeated (i, j) positions; ToCSR sums
// duplicates and produces a normalized CSR matrix.
type COO struct {
	Rows, Cols int
	I, J       []int
	V          []float64
}

// NewCOO returns an empty r×c assembly buffer with capacity for nnz
// contributions.
func NewCOO(r, c, nnz int) *COO {
	return &COO{
		Rows: r,
		Cols: c,
		I:    make([]int, 0, nnz),
		J:    make([]int, 0, nnz),
		V:    make([]float64, 0, nnz),
	}
}

// Add records the contribution v at position (i, j). Duplicates are summed
// by ToCSR. Add panics on out-of-range indices: an out-of-range assembly
// index is always a programming error in the discretization.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		panic(fmt.Sprintf("sparse: COO.Add index (%d,%d) out of range for %d×%d", i, j, c.Rows, c.Cols))
	}
	c.I = append(c.I, i)
	c.J = append(c.J, j)
	c.V = append(c.V, v)
}

// Len returns the number of recorded contributions (including duplicates).
func (c *COO) Len() int { return len(c.I) }

// ToCSR converts the buffer to CSR, summing duplicate entries and dropping
// exact zeros that result from cancellation only when drop is true.
func (c *COO) ToCSR() *CSR {
	// Bucket contributions by row using counting sort, then sort each row
	// by column and merge duplicates. This is O(nnz log rowlen) and avoids
	// a global sort of potentially tens of millions of triplets.
	rowCount := make([]int, c.Rows+1)
	for _, i := range c.I {
		rowCount[i+1]++
	}
	for i := 0; i < c.Rows; i++ {
		rowCount[i+1] += rowCount[i]
	}
	perm := make([]int, len(c.I))
	next := append([]int(nil), rowCount...)
	for k, i := range c.I {
		perm[next[i]] = k
		next[i]++
	}

	a := NewCSR(c.Rows, c.Cols, len(c.I))
	type ent struct {
		col int
		val float64
	}
	var rowBuf []ent
	for i := 0; i < c.Rows; i++ {
		rowBuf = rowBuf[:0]
		for p := rowCount[i]; p < rowCount[i+1]; p++ {
			k := perm[p]
			rowBuf = append(rowBuf, ent{c.J[k], c.V[k]})
		}
		sort.Slice(rowBuf, func(x, y int) bool { return rowBuf[x].col < rowBuf[y].col })
		for k := 0; k < len(rowBuf); {
			j := rowBuf[k].col
			var s float64
			for ; k < len(rowBuf) && rowBuf[k].col == j; k++ {
				s += rowBuf[k].val
			}
			a.ColIdx = append(a.ColIdx, j)
			a.Val = append(a.Val, s)
		}
		a.RowPtr[i+1] = len(a.ColIdx)
	}
	return a
}

// FromTriplets builds a CSR matrix directly from parallel triplet slices,
// summing duplicates.
func FromTriplets(rows, cols int, is, js []int, vs []float64) *CSR {
	if len(is) != len(js) || len(js) != len(vs) {
		panic("sparse: FromTriplets slices have different lengths")
	}
	c := &COO{Rows: rows, Cols: cols, I: is, J: js, V: vs}
	return c.ToCSR()
}
