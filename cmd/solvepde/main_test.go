package main

import (
	"math"
	"testing"
)

func TestMathLog10Guard(t *testing.T) {
	if mathLog10(0) != -18 || mathLog10(-1) != -18 {
		t.Fatal("non-positive inputs must clamp")
	}
	if got := mathLog10(100); math.Abs(got-2) > 1e-12 {
		t.Fatalf("log10(100) = %v", got)
	}
}
