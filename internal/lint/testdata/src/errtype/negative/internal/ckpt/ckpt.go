// Negative errtype fixture for the checkpoint codec package: every
// decode failure is a documented typed error, a wrap of one, or a
// passthrough. The analyzer must stay silent.
package ckpt

import "fmt"

// CorruptError is the typed framing/checksum failure.
type CorruptError struct {
	Offset int
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("ckpt: corrupt at byte %d: %s", e.Offset, e.Reason)
}

// VersionError is the typed format-version skew.
type VersionError struct{ Got, Want uint32 }

func (e *VersionError) Error() string {
	return fmt.Sprintf("ckpt: version %d, want %d", e.Got, e.Want)
}

// Decode returns only the documented typed errors.
func Decode(data []byte) error {
	if len(data) < 4 {
		return &CorruptError{Offset: len(data), Reason: "truncated header"}
	}
	if data[0] != 'P' {
		return &CorruptError{Offset: 0, Reason: "bad magic"}
	}
	if data[1] != 1 {
		return &VersionError{Got: uint32(data[1]), Want: 1}
	}
	if err := checkBody(data); err != nil {
		return fmt.Errorf("ckpt: body: %w", err)
	}
	return nil
}

func checkBody(data []byte) error {
	if len(data) > 1<<20 {
		return &CorruptError{Offset: 1 << 20, Reason: "oversized"}
	}
	return nil
}
