package dsys

import (
	"fmt"
	"sort"

	"parapre/internal/sparse"
)

// DistributeRows builds the per-rank subdomain systems from row slabs:
// slab[r] is a CSR matrix in GLOBAL numbering whose only stored rows are
// the rows owned by rank r (rhs[r][g] likewise holds only owned values,
// but is passed full-length for addressing convenience). This is the
// paper's §1.1 distributed-discretization workflow: each processor
// discretizes its own subdomain and the global system never exists —
// DistributeRows never forms the union matrix.
//
// The resulting systems are identical to Distribute(globalA, …) applied
// to the union of the slabs (a property the tests assert).
func DistributeRows(slabs []*sparse.CSR, rhs [][]float64, part []int) ([]*System, error) {
	p := len(slabs)
	if p == 0 {
		return nil, fmt.Errorf("dsys: no slabs")
	}
	n := slabs[0].Rows
	if len(part) != n {
		return nil, fmt.Errorf("dsys: partition length %d, want %d", len(part), n)
	}
	for r, s := range slabs {
		if s.Rows != n || s.Cols != n {
			return nil, fmt.Errorf("dsys: slab %d is %d×%d, want %d×%d", r, s.Rows, s.Cols, n, n)
		}
		if len(rhs[r]) != n {
			return nil, fmt.Errorf("dsys: rhs %d length %d, want %d", r, len(rhs[r]), n)
		}
	}
	// Validate ownership: every row must be stored by exactly its owner.
	for g := 0; g < n; g++ {
		r := part[g]
		if r < 0 || r >= p {
			return nil, fmt.Errorf("dsys: row %d owned by invalid rank %d", g, r)
		}
		for q, s := range slabs {
			has := s.RowNNZ(g) > 0
			if has && q != r {
				return nil, fmt.Errorf("dsys: rank %d stores row %d owned by rank %d", q, g, r)
			}
		}
		if slabs[r].RowNNZ(g) == 0 {
			return nil, fmt.Errorf("dsys: owner %d has empty row %d", r, g)
		}
	}

	// Classification needs only each owner's own rows: a node is interface
	// iff its row references another rank's column (the pattern is
	// structurally symmetric for FEM systems, so this is symmetric).
	isIface := make([]bool, n)
	for g := 0; g < n; g++ {
		cols, _ := slabs[part[g]].Row(g)
		for _, j := range cols {
			if part[j] != part[g] {
				isIface[g] = true
				break
			}
		}
	}

	systems := make([]*System, p)
	g2l := make([]int, n)
	for r := 0; r < p; r++ {
		systems[r] = buildLocalFromSlab(slabs[r], rhs[r], part, r, p, isIface, g2l)
	}
	wireNeighbors(systems)
	// Same pre-warm as Distribute: decide the blocked-SpMV format now so
	// the first solve does not pay for block detection.
	for _, s := range systems {
		s.A.AutoBlocked()
	}
	return systems, nil
}

// buildLocalFromSlab mirrors buildLocal but reads rows from the rank's
// slab instead of a global matrix.
func buildLocalFromSlab(slab *sparse.CSR, b []float64, part []int, r, p int, isIface []bool, g2l []int) *System {
	n := slab.Rows
	s := &System{Rank: r, P: p, N: n}
	for i := 0; i < n; i++ {
		if part[i] == r && !isIface[i] {
			s.GlobalIDs = append(s.GlobalIDs, i)
		}
	}
	s.NInt = len(s.GlobalIDs)
	for i := 0; i < n; i++ {
		if part[i] == r && isIface[i] {
			s.GlobalIDs = append(s.GlobalIDs, i)
		}
	}
	nloc := len(s.GlobalIDs)
	for l, g := range s.GlobalIDs {
		g2l[g] = l
	}

	extSeen := map[int]bool{}
	for _, g := range s.GlobalIDs {
		cols, _ := slab.Row(g)
		for _, j := range cols {
			if part[j] != r && !extSeen[j] {
				extSeen[j] = true
				s.ExtGlobal = append(s.ExtGlobal, j)
			}
		}
	}
	sort.Slice(s.ExtGlobal, func(x, y int) bool {
		gx, gy := s.ExtGlobal[x], s.ExtGlobal[y]
		if part[gx] != part[gy] {
			return part[gx] < part[gy]
		}
		return gx < gy
	})
	extLocal := map[int]int{}
	for k, g := range s.ExtGlobal {
		extLocal[g] = nloc + k
	}
	for k := 0; k < len(s.ExtGlobal); {
		owner := part[s.ExtGlobal[k]]
		start := k
		for k < len(s.ExtGlobal) && part[s.ExtGlobal[k]] == owner {
			k++
		}
		s.Neigh = append(s.Neigh, Neighbor{Rank: owner, RecvOff: start, RecvLen: k - start})
	}

	s.A = sparse.NewCSR(nloc, nloc+len(s.ExtGlobal), 0)
	s.B = make([]float64, nloc)
	for l, g := range s.GlobalIDs {
		s.B[l] = b[g]
		cols, vals := slab.Row(g)
		start := len(s.A.ColIdx)
		for kk, j := range cols {
			var lj int
			if part[j] == r {
				lj = g2l[j]
			} else {
				lj = extLocal[j]
			}
			s.A.ColIdx = append(s.A.ColIdx, lj)
			s.A.Val = append(s.A.Val, vals[kk])
		}
		s.A.RowPtr[l+1] = len(s.A.ColIdx)
		sortRowInPlace(s.A.ColIdx[start:], s.A.Val[start:])
	}
	return s
}
