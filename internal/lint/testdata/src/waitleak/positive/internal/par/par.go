// Positive waitleak fixture: goroutines whose join is skipped on an
// early error return, and goroutines never joined at all. The finding
// anchors at the `go` statement.
package par

import (
	"errors"
	"sync"
)

var errFail = errors.New("par: worker failure")

// LeakOnError joins on the happy path but not on the error return —
// exactly the bug class the analyzer exists for.
func LeakOnError(fail bool) error {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // WANT waitleak
		defer wg.Done()
	}()
	if fail {
		return errFail
	}
	wg.Wait()
	return nil
}

// LeakNoJoin never joins.
func LeakNoJoin(done chan struct{}) {
	go drain(done) // WANT waitleak
}

func drain(done chan struct{}) { <-done }
