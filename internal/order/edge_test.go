package order

import (
	"testing"

	"parapre/internal/sparse"
)

// Edge cases the verification harness exercises through perm-identity:
// RCM must return a valid permutation for empty, trivial, diagonal-only,
// and unsymmetric-pattern inputs — not just nice FEM graphs.

func TestRCMEmptyMatrix(t *testing.T) {
	a := sparse.NewCOO(0, 0, 0).ToCSR()
	p := RCM(a)
	if len(p) != 0 || !p.IsValid() {
		t.Errorf("RCM of 0×0 matrix: %v", p)
	}
	if Bandwidth(a) != 0 || Profile(a) != 0 {
		t.Errorf("bandwidth/profile of empty matrix nonzero")
	}
}

func TestRCMSingleVertex(t *testing.T) {
	coo := sparse.NewCOO(1, 1, 1)
	coo.Add(0, 0, 3)
	p := RCM(coo.ToCSR())
	if len(p) != 1 || p[0] != 0 {
		t.Errorf("RCM of 1×1 matrix: %v", p)
	}
}

// Diagonal-only: every vertex is isolated, i.e. the maximally
// disconnected graph. RCM must still touch each exactly once.
func TestRCMDiagonalOnly(t *testing.T) {
	n := 7
	coo := sparse.NewCOO(n, n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	p := RCM(coo.ToCSR())
	if len(p) != n || !p.IsValid() {
		t.Errorf("RCM of diagonal matrix invalid: %v", p)
	}
}

// Structurally empty rows (no diagonal either) are isolated vertices too;
// the ordering must include them rather than drop them.
func TestRCMEmptyRows(t *testing.T) {
	coo := sparse.NewCOO(5, 5, 6)
	coo.Add(0, 0, 2)
	coo.Add(0, 1, -1)
	coo.Add(1, 1, 2)
	coo.Add(4, 4, 2)
	// rows 2 and 3 are structurally empty
	p := RCM(coo.ToCSR())
	if len(p) != 5 || !p.IsValid() {
		t.Errorf("RCM with empty rows invalid: %v", p)
	}
}

// An unsymmetric pattern must be symmetrized, not mis-ordered: an edge
// stored in only one triangle still connects both endpoints.
func TestRCMUnsymmetricPattern(t *testing.T) {
	n := 6
	coo := sparse.NewCOO(n, n, 2*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
	}
	// One-directional chain edges only: (i, i+1) without (i+1, i).
	for i := 0; i < n-1; i++ {
		coo.Add(i, i+1, -1)
	}
	a := coo.ToCSR()
	p := RCM(a)
	if !p.IsValid() {
		t.Fatalf("RCM of unsymmetric pattern invalid: %v", p)
	}
	// The graph is a path, so RCM must recover bandwidth 1 after a
	// symmetric permutation.
	if bw := Bandwidth(sparse.PermuteSym(a, p)); bw != 1 {
		t.Errorf("path graph reordered to bandwidth %d, want 1", bw)
	}
}
