package verify

import "fmt"

// minimize shrinks a failing (n, seed) reproducer: first the problem size
// is walked down while the failure persists, then the seed is swept over
// a small range at the final size. fails must be a pure function of its
// arguments. Returns the minimized parameters formatted for
// Violation.Repro.
func minimize(fails func(n int, seed int64) bool, n int, seed int64, minN int) (int, int64) {
	if minN < 1 {
		minN = 1
	}
	// Halve while failing, then step down linearly.
	for n/2 >= minN && fails(n/2, seed) {
		n = n / 2
	}
	for n-1 >= minN && fails(n-1, seed) {
		n--
	}
	for s := int64(0); s < 8; s++ {
		if s != seed && fails(n, s) {
			return n, s
		}
	}
	return n, seed
}

// repro formats reproducer parameters uniformly.
func repro(n int, seed int64, extra string) string {
	s := fmt.Sprintf("n=%d seed=%d", n, seed)
	if extra != "" {
		s += " " + extra
	}
	return s
}
