package sparse

import (
	"fmt"
	"math"

	"parapre/internal/par"
)

// Vector kernels. These are the three Krylov kernel families the paper
// lists in §1: vector update, inner product, and (in csr.go) matrix-vector
// product. All operate on raw []float64 so the distributed layer can reuse
// them on local slices.
//
// Parallelism and determinism: the elementwise kernels (Axpy, Scal, Zero,
// Sub) split into chunks and are exact for any chunking. The reductions
// (Dot, Norm2) use the fixed-block scheme of package par — partial results
// per par.BlockSize-wide block, combined in ascending block order — so
// their values are bit-identical at every worker count, which keeps
// iteration counts and residual histories independent of the parallel
// configuration. Vectors no longer than one block follow exactly the
// historical left-to-right accumulation.

const (
	// vecParMin is the vector length at which the elementwise kernels
	// start fanning out; below it the goroutine overhead exceeds the
	// memory-bound loop it would split.
	vecParMin = 16384
	// vecGrain is the minimum chunk length handed to one worker.
	vecGrain = 8192
)

// Dot returns the inner product xᵀy (over the first len(x) entries).
func Dot(x, y []float64) float64 {
	if len(y) < len(x) {
		panic(fmt.Sprintf("sparse: Dot needs len(y) ≥ len(x), got len(x)=%d, len(y)=%d", len(x), len(y)))
	}
	n := len(x)
	if n <= par.BlockSize {
		var s float64
		for i, v := range x {
			s += v * y[i]
		}
		return s
	}
	return par.SumBlocks(n, func(lo, hi int) float64 {
		xx, yy := x[lo:hi], y[lo:hi]
		var s float64
		for i, v := range xx {
			s += v * yy[i]
		}
		return s
	})
}

// scaledSSQ is the overflow-safe sum-of-squares recurrence over one block:
// it returns (scale, ssq) with Σ x_i² = scale²·ssq. An all-zero block
// reports scale 0.
func scaledSSQ(x []float64) (scale, ssq float64) {
	scale, ssq = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			ssq = 1 + ssq*(scale/a)*(scale/a)
			scale = a
		} else {
			ssq += (a / scale) * (a / scale)
		}
	}
	return scale, ssq
}

// Norm2 returns the Euclidean norm of x, scaled for overflow safety on
// extreme inputs. Long vectors are reduced blockwise with fixed block
// boundaries (partials merged in block order), so the result is
// bit-identical for every worker count.
func Norm2(x []float64) float64 {
	n := len(x)
	if n <= par.BlockSize {
		scale, ssq := scaledSSQ(x)
		return scale * math.Sqrt(ssq)
	}
	nb := par.NumBlocks(n)
	parts := make([][2]float64, nb)
	par.For(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo := b * par.BlockSize
			hi := lo + par.BlockSize
			if hi > n {
				hi = n
			}
			s, q := scaledSSQ(x[lo:hi])
			parts[b] = [2]float64{s, q}
		}
	})
	var scale, ssq float64 = 0, 1
	for _, p := range parts {
		s2, q2 := p[0], p[1]
		if s2 == 0 {
			continue
		}
		if scale < s2 {
			ssq = q2 + ssq*(scale/s2)*(scale/s2)
			scale = s2
		} else {
			ssq += q2 * (s2 / scale) * (s2 / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum-magnitude entry of x. The max is
// order-independent, so the parallel chunking is exact.
func NormInf(x []float64) float64 {
	maxRange := func(x []float64) float64 {
		var m float64
		for _, v := range x {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		return m
	}
	n := len(x)
	if n < vecParMin || par.Workers() == 1 {
		return maxRange(x)
	}
	nb := par.NumBlocks(n)
	parts := make([]float64, nb)
	par.For(nb, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo := b * par.BlockSize
			hi := lo + par.BlockSize
			if hi > n {
				hi = n
			}
			parts[b] = maxRange(x[lo:hi])
		}
	})
	var m float64
	for _, v := range parts {
		if v > m {
			m = v
		}
	}
	return m
}

// Axpy computes y += a·x.
func Axpy(a float64, x, y []float64) {
	if len(x) >= vecParMin {
		par.For(len(x), vecGrain, func(lo, hi int) {
			xx, yy := x[lo:hi], y[lo:hi]
			for i, v := range xx {
				yy[i] += a * v
			}
		})
		return
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Scal computes x *= a.
func Scal(a float64, x []float64) {
	if len(x) >= vecParMin {
		par.For(len(x), vecGrain, func(lo, hi int) {
			xx := x[lo:hi]
			for i := range xx {
				xx[i] *= a
			}
		})
		return
	}
	for i := range x {
		x[i] *= a
	}
}

// ScaleTo computes dst = a·src (lengths must match). It is the
// normalization kernel of the Krylov basis construction.
func ScaleTo(dst []float64, a float64, src []float64) {
	if len(src) >= vecParMin {
		par.For(len(src), vecGrain, func(lo, hi int) {
			ss, dd := src[lo:hi], dst[lo:hi]
			for i, v := range ss {
				dd[i] = a * v
			}
		})
		return
	}
	for i, v := range src {
		dst[i] = a * v
	}
}

// CopyTo copies src into dst (lengths must match).
func CopyTo(dst, src []float64) {
	copy(dst, src)
}

// Zero clears x.
func Zero(x []float64) {
	if len(x) >= vecParMin {
		par.For(len(x), vecGrain, func(lo, hi int) {
			xx := x[lo:hi]
			for i := range xx {
				xx[i] = 0
			}
		})
		return
	}
	for i := range x {
		x[i] = 0
	}
}

// Sub computes z = x − y into a fresh slice.
func Sub(x, y []float64) []float64 {
	z := make([]float64, len(x))
	if len(x) >= vecParMin {
		par.For(len(x), vecGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				z[i] = x[i] - y[i]
			}
		})
		return z
	}
	for i := range x {
		z[i] = x[i] - y[i]
	}
	return z
}
