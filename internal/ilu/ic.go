package ilu

import (
	"math"
	"sync/atomic"

	"parapre/internal/par"
	"parapre/internal/sparse"
)

// Chol is a zero fill-in incomplete Cholesky factorization A ≈ L·Lᵀ of a
// symmetric positive definite matrix. Unlike the unsymmetric ILU variants
// it is itself symmetric positive definite, which preconditioned CG
// requires.
type Chol struct {
	L  *sparse.CSR // lower triangle, diagonal last in each row
	Lt *sparse.CSR // Lᵀ, for the backward solve
	// Fixes counts diagonal entries that had to be repaired to keep the
	// factorization real (0 for M-matrices / well-behaved SPD input).
	Fixes int

	// lvl caches the level schedule of the triangular sweeps — see
	// levels.go.
	lvl atomic.Pointer[triSched]
}

// N returns the matrix dimension.
func (c *Chol) N() int { return c.L.Rows }

// SolveFlops returns the cost of one Solve application. The factor L is
// applied twice (L and Lᵀ), so the 2-flops-per-applied-entry convention
// shared with LU.SolveFlops gives 4·NNZ(L). The exact kernel count is
// 4·NNZ(L) − 2n (the diagonal of each sweep is one divide, not a
// multiply-subtract pair); the model keeps the round form for the same
// golden-stability reason as LU.SolveFlops. TestCholSolveFlopsModel pins
// both.
func (c *Chol) SolveFlops() float64 { return 4 * float64(c.L.NNZ()) }

// Solve computes z = L⁻ᵀ·L⁻¹·r. z and r may alias. Sweeps run
// level-scheduled when enabled and profitable, bit-identical to the
// serial sweeps — see levels.go.
//
//lint:allocfree steady state once the level schedule is cached; verified dynamically by TestCholSolveZeroAllocSteadyState
func (c *Chol) Solve(z, r []float64) {
	if s := c.sched(); s != nil {
		c.solveScheduled(z, r, s)
		return
	}
	c.forwardSerial(z, r)
	c.backwardSerial(z)
}

// forwardSerial solves L·z = r (diagonal is the last entry of each row).
func (c *Chol) forwardSerial(z, r []float64) {
	n := c.N()
	rp, ci, vv := c.L.RowPtr, c.L.ColIdx, c.L.Val
	for i := 0; i < n; i++ {
		s := r[i]
		hi := rp[i+1]
		row := vv[rp[i] : hi-1]
		cols := ci[rp[i] : hi-1]
		for k, v := range row {
			s -= v * z[cols[k]]
		}
		z[i] = s / vv[hi-1]
	}
}

// backwardSerial solves Lᵀ·z = z (diagonal is the first entry of each Lt
// row).
func (c *Chol) backwardSerial(z []float64) {
	n := c.N()
	rp, ci, vv := c.Lt.RowPtr, c.Lt.ColIdx, c.Lt.Val
	for i := n - 1; i >= 0; i-- {
		lo := rp[i]
		s := z[i]
		row := vv[lo+1 : rp[i+1]]
		cols := ci[lo+1 : rp[i+1]]
		for k, v := range row {
			s -= v * z[cols[k]]
		}
		z[i] = s / vv[lo]
	}
}

// solveScheduled runs the level-scheduled sweeps; each direction falls
// back to its serial sweep when its level structure is too narrow.
func (c *Chol) solveScheduled(z, r []float64, s *triSched) {
	w := par.Workers()
	force := levelMode() == LevelForce
	if force || s.fwd.profitable(w) {
		rp, ci, vv := c.L.RowPtr, c.L.ColIdx, c.L.Val
		rows := s.fwd.rows
		par.ForLevels(s.fwd.ptr, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				i := rows[t]
				acc := r[i]
				end := rp[i+1]
				row := vv[rp[i] : end-1]
				cols := ci[rp[i] : end-1]
				for k, v := range row {
					acc -= v * z[cols[k]]
				}
				z[i] = acc / vv[end-1]
			}
		})
	} else {
		c.forwardSerial(z, r)
	}
	if force || s.bwd.profitable(w) {
		rp, ci, vv := c.Lt.RowPtr, c.Lt.ColIdx, c.Lt.Val
		rows := s.bwd.rows
		par.ForLevels(s.bwd.ptr, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				i := rows[t]
				base := rp[i]
				acc := z[i]
				row := vv[base+1 : rp[i+1]]
				cols := ci[base+1 : rp[i+1]]
				for k, v := range row {
					acc -= v * z[cols[k]]
				}
				z[i] = acc / vv[base]
			}
		})
	} else {
		c.backwardSerial(z)
	}
}

// IC0 computes the zero fill-in incomplete Cholesky factorization: L
// keeps exactly the lower-triangular pattern of a. a must be square with
// a symmetric pattern and positive diagonal; non-positive intermediate
// diagonals are repaired (counted in Fixes).
func IC0(a *sparse.CSR) (*Chol, error) {
	if a.Rows != a.Cols {
		return nil, badInputErr("IC0", "non-square %d×%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := sparse.NewCSR(n, n, a.NNZ()/2+n)
	fixes := 0

	// Dense scatter of the current row's computed L values.
	w := make([]float64, n)
	inRow := make([]bool, n)

	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		var rowNorm float64
		var diagA float64
		// Collect lower-pattern entries of row i.
		start := len(l.ColIdx)
		for k, j := range cols {
			rowNorm += math.Abs(vals[k])
			if j < i {
				l.ColIdx = append(l.ColIdx, j)
				l.Val = append(l.Val, vals[k])
			} else if j == i {
				diagA = vals[k]
			}
		}
		if rowNorm == 0 {
			return nil, zeroPivotErr("IC0", i)
		}
		rowNorm /= float64(len(cols))

		// Compute L[i][j] for j in pattern, in increasing j.
		rowCols := l.ColIdx[start:]
		rowVals := l.Val[start:]
		for t, j := range rowCols {
			// s = A[i][j] − Σ_{k<j} L[i][k]·L[j][k]; iterate row j of L.
			s := rowVals[t]
			jlo, jhi := l.RowPtr[j], l.RowPtr[j+1]
			for k := jlo; k < jhi-1; k++ {
				jk := l.ColIdx[k]
				if inRow[jk] {
					s -= w[jk] * l.Val[k]
				}
			}
			ljj := l.Val[jhi-1]
			lij := s / ljj
			rowVals[t] = lij
			w[j] = lij
			inRow[j] = true
		}
		// Diagonal.
		d := diagA
		for _, j := range rowCols {
			d -= w[j] * w[j]
		}
		if d <= 0 {
			fixes++
			d = pivotRel * rowNorm
			if d <= 0 {
				d = pivotRel
			}
		}
		l.ColIdx = append(l.ColIdx, i)
		l.Val = append(l.Val, math.Sqrt(d))
		l.RowPtr[i+1] = len(l.ColIdx)

		for _, j := range rowCols {
			inRow[j] = false
			w[j] = 0
		}
	}
	c := &Chol{L: l, Lt: l.Transpose(), Fixes: fixes}
	c.prepLevels()
	return c, nil
}
