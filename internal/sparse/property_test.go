package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property suite for the composition behavior of the structural
// operations: the solvers downstream lean on Extract/PermuteSym/Transpose
// commuting with matrix-vector algebra in exactly these ways.

func TestExtractIdentityIsClone(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	a := randCSR(rng, 15, 15, 0.3)
	all := make([]int, 15)
	for i := range all {
		all[i] = i
	}
	b := Extract(a, all, all)
	if !a.Equal(b) {
		t.Fatal("Extract(identity) != original")
	}
}

func TestExtractCommutesWithMatVec(t *testing.T) {
	// (A[R,C])·x == (A·x̂)[R] where x̂ scatters x into the C positions,
	// provided rows R reference only columns C — guaranteed when C is the
	// full column set.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nr, nc := 3+rng.Intn(12), 3+rng.Intn(12)
		a := randCSR(rng, nr, nc, 0.3)
		// Random row subset.
		var rows []int
		for i := 0; i < nr; i++ {
			if rng.Intn(2) == 0 {
				rows = append(rows, i)
			}
		}
		cols := make([]int, nc)
		for j := range cols {
			cols[j] = j
		}
		sub := Extract(a, rows, cols)
		x := randVec(rng, nc)
		full := a.MulVec(x)
		got := sub.MulVec(x)
		for i, r := range rows {
			if math.Abs(got[i]-full[r]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteSymComposition(t *testing.T) {
	// P2·(P1·A·P1ᵀ)·P2ᵀ == (P1∘P2)·A·(P1∘P2)ᵀ with the composed
	// permutation q[i] = p1[p2[i]].
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		a := randCSR(rng, n, n, 0.3)
		p1 := Perm(rng.Perm(n))
		p2 := Perm(rng.Perm(n))
		b := PermuteSym(PermuteSym(a, p1), p2)
		q := make(Perm, n)
		for i := range q {
			q[i] = p1[p2[i]]
		}
		c := PermuteSym(a, q)
		return b.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeExtractCommute(t *testing.T) {
	// Extract(Aᵀ, C, R) == Extract(A, R, C)ᵀ.
	rng := rand.New(rand.NewSource(31))
	a := randCSR(rng, 12, 10, 0.35)
	rows := []int{0, 3, 7, 11}
	cols := []int{1, 2, 9}
	lhs := Extract(a.Transpose(), cols, rows)
	rhs := Extract(a, rows, cols).Transpose()
	if !lhs.Equal(rhs) {
		t.Fatal("transpose and extract do not commute")
	}
}

func TestCOOMatchesDenseSum(t *testing.T) {
	// Summed duplicate triplets equal the dense accumulation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		coo := NewCOO(n, n, 32)
		d := NewDense(n, n)
		for k := 0; k < 32; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			v := rng.NormFloat64()
			coo.Add(i, j, v)
			d.Add(i, j, v)
		}
		a := coo.ToCSR()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(a.At(i, j)-d.At(i, j)) > 1e-12 {
					return false
				}
			}
		}
		return a.CheckValid() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecLinearity(t *testing.T) {
	f := func(seed int64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := randCSR(rng, n, n, 0.3)
		x, y := randVec(rng, n), randVec(rng, n)
		z := make([]float64, n)
		for i := range z {
			z[i] = x[i] + alpha*y[i]
		}
		az := a.MulVec(z)
		ax := a.MulVec(x)
		ay := a.MulVec(y)
		for i := range az {
			want := ax[i] + alpha*ay[i]
			scale := 1 + math.Abs(want)
			if math.Abs(az[i]-want) > 1e-9*scale*(1+math.Abs(alpha)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseMulVecMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randCSR(rng, 9, 13, 0.4)
	d := a.Dense()
	x := randVec(rng, 13)
	y1 := a.MulVec(x)
	y2 := d.MulVec(x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatal("dense expansion changed the operator")
		}
	}
	y3 := make([]float64, 9)
	d.MulVecTo(y3, x)
	for i := range y2 {
		if y2[i] != y3[i] {
			t.Fatal("MulVecTo differs from MulVec")
		}
	}
}
