package ilu

import (
	"errors"
	"fmt"
)

// ErrZeroPivot is the sentinel all structural-singularity errors wrap.
// Callers test for it with errors.Is(err, ilu.ErrZeroPivot), mirroring the
// krylov.ErrBreakdown convention.
//
// It is returned when a factorization encounters a row that carries no
// numerical information at all (structurally empty, or every stored entry
// exactly zero): no drop tolerance or pivot repair can make the resulting
// U nonsingular, so silently flooring the pivot — the old behavior — would
// hand the solver a factor whose application amplifies the right-hand side
// by 1/pivotRel. Small-but-nonzero pivots are still repaired relative to
// the row norm and counted in PivotFixes/Fixes; only the truly
// information-free case is an error.
var ErrZeroPivot = errors.New("ilu: zero pivot")

// ZeroPivotError identifies the factorization and row where a structurally
// singular pivot was detected. It wraps ErrZeroPivot.
type ZeroPivotError struct {
	Method string // "ILU0", "ILUT", "ILUTP" or "IC0"
	Row    int    // row index in the matrix being factored
}

func (e *ZeroPivotError) Error() string {
	return fmt.Sprintf("ilu: %s: row %d is structurally zero, factorization singular", e.Method, e.Row)
}

// Unwrap makes errors.Is(e, ErrZeroPivot) true.
func (e *ZeroPivotError) Unwrap() error { return ErrZeroPivot }

// zeroPivotErr builds the factorization-side singularity record.
func zeroPivotErr(method string, row int) *ZeroPivotError {
	return &ZeroPivotError{Method: method, Row: row}
}
