// Package cases assembles the paper's suite of six PDE test cases (§3) as
// ready-to-distribute linear systems. Each case is parameterized by a
// resolution so the paper-scale problems (≈10⁶ unknowns) and CI-scale
// versions share one code path.
//
// Note on signs: the paper writes the Poisson problems as ∇²u = f with
// f(x,y) = x·e^y and boundary data u = x·e^y; since ∇²(x·e^y) = x·e^y,
// that combination makes u = x·e^y the exact solution of ∇²u = u. We
// assemble the standard −∇²u = f form and negate f accordingly, so the
// harmonic-like manufactured solution is preserved; the matrix — the only
// thing that matters for the preconditioner comparison — is identical.
package cases

import (
	"fmt"
	"math"

	"parapre/internal/core"
	"parapre/internal/fem"
	"parapre/internal/grid"
	"parapre/internal/sparse"
)

// Case describes one of the paper's test cases.
type Case struct {
	ID          int
	Name        string
	Description string
	SPD         bool
	DefaultSize int // scaled-down size used by tests/benches
	PaperSize   int // the paper's resolution parameter
	Build       func(size int) *core.Problem
}

// All returns the six test cases, in the paper's order.
func All() []Case {
	return []Case{
		{
			ID: 1, Name: "tc1-poisson2d",
			Description: "Poisson, 2D unit square, structured grid (paper: 1001² = 1,002,001 points)",
			SPD:         true, DefaultSize: 33, PaperSize: 1001, Build: Poisson2D,
		},
		{
			ID: 2, Name: "tc2-poisson3d",
			Description: "Poisson, 3D unit cube, structured grid (paper: 101³ = 1,030,301 points)",
			SPD:         true, DefaultSize: 9, PaperSize: 101, Build: Poisson3D,
		},
		{
			ID: 3, Name: "tc3-unstructured",
			Description: "Poisson, 2D plate-with-hole, unstructured grid (paper: 521,185 points)",
			SPD:         true, DefaultSize: 37, PaperSize: 723, Build: PoissonUnstructured,
		},
		{
			ID: 4, Name: "tc4-heat3d",
			Description: "Heat equation, one implicit step Δt=0.05, 3D unit cube (paper: 101³)",
			SPD:         true, DefaultSize: 9, PaperSize: 101, Build: Heat3D,
		},
		{
			ID: 5, Name: "tc5-convdiff",
			Description: "Convection–diffusion, |v|=1000, θ=π/4, SUPG upwinding, 2D unit square (paper: 1001²)",
			SPD:         false, DefaultSize: 33, PaperSize: 1001, Build: ConvDiff2D,
		},
		{
			ID: 6, Name: "tc6-elasticity",
			Description: "Linear elasticity, quarter ring, curvilinear grid, 2 dof/node (paper: 241×241 points)",
			SPD:         true, DefaultSize: 17, PaperSize: 241, Build: Elasticity,
		},
		{
			ID: 7, Name: "tc7-jump",
			Description: "EXTENSION: Poisson with a 1000:1 discontinuous coefficient, 2D unit square — the classic stress test for one-level DD preconditioners",
			SPD:         true, DefaultSize: 33, PaperSize: 0, Build: JumpCoefficient,
		},
	}
}

// ByName returns the case with the given Name.
func ByName(name string) (Case, error) {
	for _, c := range All() {
		if c.Name == name {
			return c, nil
		}
	}
	return Case{}, fmt.Errorf("cases: unknown case %q", name)
}

func exact2D(x []float64) float64 { return x[0] * math.Exp(x[1]) }

// Poisson2D is Test Case 1.
func Poisson2D(size int) *core.Problem {
	g := grid.UnitSquareTri(size)
	a, b := fem.AssembleScalar(g, fem.ScalarPDE{
		Diffusion: 1,
		Source:    func(x []float64) float64 { return -exact2D(x) },
	})
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = exact2D(g.Coord(n))
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	return &core.Problem{Name: "tc1-poisson2d", A: a, B: b, Mesh: g, DofsPerNode: 1}
}

func exact3D(x []float64) float64 { return x[0] * math.Exp(x[1]*x[2]) }

// Poisson3D is Test Case 2. The paper's f = x(y²+z²)e^{yz} satisfies
// ∇²(x e^{yz}) = f, so u = x·e^{yz} solves −∇²u = −f.
func Poisson3D(size int) *core.Problem {
	g := grid.UnitCubeTet(size)
	a, b := fem.AssembleScalar(g, fem.ScalarPDE{
		Diffusion: 1,
		Source: func(x []float64) float64 {
			return -x[0] * (x[1]*x[1] + x[2]*x[2]) * math.Exp(x[1]*x[2])
		},
	})
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = exact3D(g.Coord(n))
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	return &core.Problem{Name: "tc2-poisson3d", A: a, B: b, Mesh: g, DofsPerNode: 1}
}

// PoissonUnstructured is Test Case 3: the same PDE and data as Test
// Case 1 on the synthetic unstructured plate-with-hole grid.
func PoissonUnstructured(size int) *core.Problem {
	g := grid.PlateWithHole(size)
	a, b := fem.AssembleScalar(g, fem.ScalarPDE{
		Diffusion: 1,
		Source:    func(x []float64) float64 { return -exact2D(x) },
	})
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = exact2D(g.Coord(n))
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	return &core.Problem{Name: "tc3-unstructured", A: a, B: b, Mesh: g, DofsPerNode: 1}
}

// Heat3D is Test Case 4: one implicit Euler step of u_t = ∇²u with
// Δt = 0.05, initial condition u⁰ = sin(πx)·sin(πy), homogeneous
// Dirichlet on the face x = 1 and natural conditions elsewhere. The
// system matrix is A = M + Δt·K.
func Heat3D(size int) *core.Problem {
	const dt = 0.05
	g := grid.UnitCubeTet(size)
	k, _ := fem.AssembleScalar(g, fem.ScalarPDE{Diffusion: 1})
	mass := fem.AssembleMass(g)

	n := k.Rows
	coo := sparse.NewCOO(n, n, k.NNZ()+mass.NNZ())
	for i := 0; i < n; i++ {
		cols, vals := mass.Row(i)
		for kk, j := range cols {
			coo.Add(i, j, vals[kk])
		}
		cols, vals = k.Row(i)
		for kk, j := range cols {
			coo.Add(i, j, dt*vals[kk])
		}
	}
	a := coo.ToCSR()

	// RHS = M·u⁰.
	u0 := make([]float64, n)
	for node := 0; node < n; node++ {
		c := g.Coord(node)
		u0[node] = math.Sin(math.Pi*c[0]) * math.Sin(math.Pi*c[1])
	}
	b := mass.MulVec(u0)

	bc := map[int]float64{}
	for node := 0; node < n; node++ {
		//lint:ignore floatcmp boundary coordinates are exact by mesh construction ((n-1)/(n-1) == 1 in IEEE 754)
		if g.Coord(node)[0] == 1 {
			bc[node] = 0
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	return &core.Problem{Name: "tc4-heat3d", A: a, B: b, Mesh: g, DofsPerNode: 1}
}

// ConvDiff2D is Test Case 5: stationary convection–diffusion with
// |v| = 1000 at angle π/4, SUPG-stabilized (unsymmetric matrix). Boundary
// conditions follow the paper's Fig. 4: u = 0 on the bottom and the lower
// quarter of the left side, u = 1 on the rest of the left side, natural
// (zero normal derivative) on the right and top sides.
func ConvDiff2D(size int) *core.Problem {
	g := grid.UnitSquareTri(size)
	v := 1000.0
	a, b := fem.AssembleScalar(g, fem.ScalarPDE{
		Diffusion: 1,
		Velocity:  []float64{v * math.Cos(math.Pi/4), v * math.Sin(math.Pi/4)},
		SUPG:      true,
	})
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		c := g.Coord(n)
		switch {
		case c[1] == 0:
			bc[n] = 0
		case c[0] == 0 && c[1] <= 0.25:
			bc[n] = 0
		case c[0] == 0:
			bc[n] = 1
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	return &core.Problem{Name: "tc5-convdiff", A: a, B: b, Mesh: g, DofsPerNode: 1}
}

// JumpCoefficient is an extension case beyond the paper: −∇·(k∇u) = 1
// with k jumping from 1 to 1000 inside the square [0.25,0.75]², u = 0 on
// the boundary. Strong coefficient jumps degrade one-level block
// preconditioners far more than Schur-complement-enhanced ones — the same
// qualitative axis the paper probes with its elasticity case.
func JumpCoefficient(size int) *core.Problem {
	g := grid.UnitSquareTri(size)
	a, b := fem.AssembleScalar(g, fem.ScalarPDE{
		Diffusion: 1,
		DiffusionFn: func(x []float64) float64 {
			if x[0] > 0.25 && x[0] < 0.75 && x[1] > 0.25 && x[1] < 0.75 {
				return 1000
			}
			return 1
		},
		Source: func(x []float64) float64 { return 1 },
	})
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = 0
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	return &core.Problem{Name: "tc7-jump", A: a, B: b, Mesh: g, DofsPerNode: 1}
}

// Elasticity is Test Case 6: the displacement field of a quarter ring
// (inner radius 1, outer radius 2) under a volume load, with u₁ = 0 on
// Γ₁ (the x = 0 edge) and u₂ = 0 on Γ₂ (the y = 0 edge); the stress
// vector is prescribed (zero traction) on the rest of the boundary. Two
// unknowns per grid point, as in the paper.
func Elasticity(size int) *core.Problem {
	g := grid.QuarterRing(size, size)
	const mu, lambda = 1.0, 1.5
	a, b := fem.AssembleElasticity(g, mu, lambda,
		func(x []float64) (float64, float64) { return 0, -1 })
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		c := g.Coord(n)
		if math.Abs(c[0]) < 1e-12 { // Γ₁: the θ = π/2 edge
			bc[2*n] = 0
		}
		if math.Abs(c[1]) < 1e-12 { // Γ₂: the θ = 0 edge
			bc[2*n+1] = 0
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	return &core.Problem{Name: "tc6-elasticity", A: a, B: b, Mesh: g, DofsPerNode: 2}
}
