package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Lint baseline: the committed ledger of known findings, keyed by
// (analyzer, module-relative file, message) with a count. The key
// deliberately omits line numbers so unrelated edits that shift code do
// not churn the file; two identical findings in one file are the same
// key counted twice.
//
// The gate is two-sided. A finding not covered by the baseline is NEW
// and fails the run — the codebase cannot regress. A baseline entry with
// no matching finding is STALE and also fails the run, prompting a
// -write-baseline regeneration — the baseline can only shrink, never
// silently hoard fixed findings.

// BaselineKey identifies one kind of finding at one file.
type BaselineKey struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-relative, slash-separated
	Message  string `json:"message"`
}

// Baseline is the parsed committed baseline.
type Baseline struct {
	Entries map[BaselineKey]int
}

// baselineFile is the on-disk JSON shape.
type baselineFile struct {
	Version  int             `json:"version"`
	Findings []baselineEntry `json:"findings"`
}

type baselineEntry struct {
	BaselineKey
	Count int `json:"count"`
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline (every finding is new), not an error.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{Entries: map[BaselineKey]int{}}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return b, nil
		}
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %v", path, err)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("lint: baseline %s has unsupported version %d", path, f.Version)
	}
	for _, e := range f.Findings {
		if e.Count <= 0 {
			e.Count = 1
		}
		b.Entries[e.BaselineKey] += e.Count
	}
	return b, nil
}

// WriteBaseline writes the findings as a fresh baseline, sorted for
// stable diffs.
func WriteBaseline(path, moduleRoot string, diags []Diagnostic) error {
	counts := map[BaselineKey]int{}
	for _, d := range diags {
		counts[baselineKeyOf(moduleRoot, d)]++
	}
	keys := make([]BaselineKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	f := baselineFile{Version: 1}
	for _, k := range keys {
		f.Findings = append(f.Findings, baselineEntry{BaselineKey: k, Count: counts[k]})
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// BaselineDiff is the two-sided comparison of a run against a baseline.
type BaselineDiff struct {
	// New holds findings not absorbed by the baseline: regressions.
	New []Diagnostic
	// Stale holds baseline entries (with their unmatched residual count)
	// whose findings are gone: the baseline must be regenerated.
	Stale map[BaselineKey]int
}

// Clean reports whether the run matches the baseline exactly.
func (d *BaselineDiff) Clean() bool { return len(d.New) == 0 && len(d.Stale) == 0 }

// Diff compares findings against the baseline.
func (b *Baseline) Diff(moduleRoot string, diags []Diagnostic) *BaselineDiff {
	remaining := make(map[BaselineKey]int, len(b.Entries))
	for k, n := range b.Entries {
		remaining[k] = n
	}
	out := &BaselineDiff{Stale: map[BaselineKey]int{}}
	for _, d := range diags {
		k := baselineKeyOf(moduleRoot, d)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out.New = append(out.New, d)
	}
	for k, n := range remaining {
		if n > 0 {
			out.Stale[k] = n
		}
	}
	return out
}

// StaleKeys returns the stale entries in deterministic order.
func (d *BaselineDiff) StaleKeys() []BaselineKey {
	keys := make([]BaselineKey, 0, len(d.Stale))
	for k := range d.Stale {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return keys
}

// baselineKeyOf builds the module-relative key of one diagnostic.
func baselineKeyOf(moduleRoot string, d Diagnostic) BaselineKey {
	return BaselineKey{Analyzer: d.Analyzer, File: RelFile(moduleRoot, d.Pos.Filename), Message: d.Message}
}

// RelFile renders filename module-relative with forward slashes; files
// outside the module keep their absolute path.
func RelFile(moduleRoot, filename string) string {
	rel, err := filepath.Rel(moduleRoot, filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(filename)
	}
	return filepath.ToSlash(rel)
}

// JSONDiagnostic is the -json output record of one finding.
type JSONDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// ToJSONDiagnostics converts findings to their JSON records.
func ToJSONDiagnostics(moduleRoot string, diags []Diagnostic) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			Analyzer: d.Analyzer,
			File:     RelFile(moduleRoot, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	return out
}
