package core_test

import (
	"testing"

	"parapre/internal/cases"
	"parapre/internal/core"
	"parapre/internal/dist"
	"parapre/internal/precond"
)

func solveCase(t *testing.T, name string, size, p int, kind precond.Kind, mutate func(*core.Config)) *core.Result {
	t.Helper()
	c, err := cases.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prob := c.Build(size)
	cfg := core.DefaultConfig(p, kind)
	cfg.KeepX = true
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatalf("%s/%s P=%d: %v", name, kind, p, err)
	}
	return res
}

func TestSolveAllCasesAllPreconditioners(t *testing.T) {
	sizes := map[string]int{
		"tc1-poisson2d":    17,
		"tc2-poisson3d":    7,
		"tc3-unstructured": 20,
		"tc4-heat3d":       7,
		"tc5-convdiff":     17,
		"tc6-elasticity":   9,
		"tc7-jump":         17,
	}
	kinds := []precond.Kind{precond.KindBlock1, precond.KindBlock2, precond.KindSchur1, precond.KindSchur2, precond.KindMSLR}
	for _, c := range cases.All() {
		for _, k := range kinds {
			res := solveCase(t, c.Name, sizes[c.Name], 4, k, nil)
			if !res.Converged {
				t.Errorf("%s/%s: did not converge in %d iterations", c.Name, k, res.Iterations)
				continue
			}
			if res.TrueRelRes > 1e-5 {
				t.Errorf("%s/%s: true residual %v (preconditioner corrupted the solve)", c.Name, k, res.TrueRelRes)
			}
			if res.SolveTime <= 0 || res.SetupTime < 0 {
				t.Errorf("%s/%s: nonpositive modeled times: setup %v solve %v", c.Name, k, res.SetupTime, res.SolveTime)
			}
			t.Logf("%-18s %-8s P=4: %3d itr, %.4fs model", c.Name, k, res.Iterations, res.SolveTime)
		}
	}
}

func TestSolutionAgreesWithSequentialReference(t *testing.T) {
	c, _ := cases.ByName("tc1-poisson2d")
	prob := c.Build(17)
	res := solveCase(t, "tc1-poisson2d", 17, 4, precond.KindSchur1, nil)
	d, err := core.Verify(prob, res.X)
	if err != nil {
		t.Fatal(err)
	}
	if d > 2e-4 {
		t.Fatalf("distributed solution differs from reference by %v", d)
	}
}

func TestSimplePartitionScheme(t *testing.T) {
	res := solveCase(t, "tc2-poisson3d", 7, 8, precond.KindBlock2, func(cfg *core.Config) {
		cfg.Scheme = core.PartitionSimple
	})
	if !res.Converged || res.TrueRelRes > 1e-5 {
		t.Fatalf("simple partition solve failed: %+v", res)
	}
}

func TestMachineModelsProduceDifferentTimes(t *testing.T) {
	mk := func(m *dist.Machine) *core.Result {
		return solveCase(t, "tc1-poisson2d", 17, 4, precond.KindBlock1, func(cfg *core.Config) {
			cfg.Machine = m
		})
	}
	cl := mk(dist.LinuxCluster())
	or := mk(dist.Origin3800())
	if cl.SolveTime == or.SolveTime {
		t.Fatal("machine models indistinguishable")
	}
	// Same matrix + same partition seed would give same iterations; with
	// the machine-specific seeds, counts may differ (as in the paper) but
	// both must converge.
	if !cl.Converged || !or.Converged {
		t.Fatal("convergence failure")
	}
}

func TestPartitionSeedChangesIterations(t *testing.T) {
	// The paper §4.3 observes that different RNGs in the partitioner gave
	// different iteration counts on the two machines. Reproduce: two
	// seeds, same everything else.
	a := solveCase(t, "tc1-poisson2d", 21, 6, precond.KindBlock1, func(cfg *core.Config) { cfg.PartSeed = 11 })
	b := solveCase(t, "tc1-poisson2d", 21, 6, precond.KindBlock1, func(cfg *core.Config) { cfg.PartSeed = 12 })
	if a.Iterations == b.Iterations {
		t.Logf("seeds gave equal counts (%d) — possible but unusual", a.Iterations)
	}
	if !a.Converged || !b.Converged {
		t.Fatal("convergence failure")
	}
}

func TestSchwarzThroughCore(t *testing.T) {
	c, _ := cases.ByName("tc1-poisson2d")
	const m = 25
	prob := c.Build(m)
	cfg := core.DefaultConfig(4, precond.KindNone)
	sw := precond.DefaultSchwarz(m, 2, 2, true)
	cfg.Schwarz = &sw
	cfg.KeepX = true
	// Schwarz requires the matching box partition.
	cfg.Scheme = core.PartitionSimple
	res, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.TrueRelRes > 1e-5 {
		t.Fatalf("Schwarz solve failed: %+v", res)
	}
}

func TestSolveValidation(t *testing.T) {
	c, _ := cases.ByName("tc1-poisson2d")
	prob := c.Build(9)
	if _, err := core.Solve(prob, core.Config{P: 0}); err == nil {
		t.Fatal("P=0 accepted")
	}
}

func TestUnpreconditionedBaseline(t *testing.T) {
	res := solveCase(t, "tc1-poisson2d", 17, 2, precond.KindNone, func(cfg *core.Config) {
		cfg.Solver.MaxIters = 2000
	})
	if !res.Converged {
		t.Fatalf("unpreconditioned baseline failed: %+v", res)
	}
	pre := solveCase(t, "tc1-poisson2d", 17, 2, precond.KindSchur1, nil)
	if pre.Iterations >= res.Iterations {
		t.Fatalf("Schur 1 (%d) no better than unpreconditioned (%d)", pre.Iterations, res.Iterations)
	}
}

func TestOverlapLevelsThroughCore(t *testing.T) {
	plain := solveCase(t, "tc1-poisson2d", 21, 4, precond.KindBlock2, nil)
	over := solveCase(t, "tc1-poisson2d", 21, 4, precond.KindBlock2, func(cfg *core.Config) {
		cfg.OverlapLevels = 2
	})
	if !plain.Converged || !over.Converged {
		t.Fatal("convergence failure")
	}
	if over.TrueRelRes > 1e-5 {
		t.Fatalf("overlap solve residual %v", over.TrueRelRes)
	}
	if over.Iterations >= plain.Iterations {
		t.Fatalf("overlap (%d) not better than plain Block 2 (%d)", over.Iterations, plain.Iterations)
	}
}

func TestSessionReuseMatchesOneShot(t *testing.T) {
	c, _ := cases.ByName("tc1-poisson2d")
	prob := c.Build(17)
	cfg := core.DefaultConfig(4, precond.KindSchur1)
	cfg.KeepX = true

	sess, err := core.NewSession(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	one, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sess.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Iterations != one.Iterations {
		t.Fatalf("session iterations %d != one-shot %d", r1.Iterations, one.Iterations)
	}
	for i := range r1.X {
		if r1.X[i] != one.X[i] {
			t.Fatal("session solution differs from one-shot")
		}
	}
	// Second solve with a different RHS must also work and stay exact.
	b2 := make([]float64, prob.A.Rows)
	for i := range b2 {
		b2[i] = float64(i%7) - 3
	}
	r2, err := sess.Solve(b2)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Converged || r2.TrueRelRes > 1e-5 {
		t.Fatalf("session re-solve failed: %+v", r2)
	}
	if sess.P() != 4 || sess.SetupTime() < 0 || len(sess.Systems()) != 4 {
		t.Fatal("session accessors broken")
	}
}

func TestSessionValidation(t *testing.T) {
	c, _ := cases.ByName("tc1-poisson2d")
	prob := c.Build(9)
	if _, err := core.NewSession(prob, core.Config{P: 0}); err == nil {
		t.Fatal("P=0 accepted")
	}
	sess, err := core.NewSession(prob, core.DefaultConfig(2, precond.KindBlock1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Solve(make([]float64, 3)); err == nil {
		t.Fatal("wrong rhs length accepted")
	}
}

func TestBlockARMSThroughCore(t *testing.T) {
	res := solveCase(t, "tc1-poisson2d", 17, 4, precond.KindBlockARMS, nil)
	if !res.Converged || res.TrueRelRes > 1e-5 {
		t.Fatalf("Block ARMS failed: %+v", res)
	}
	// ARMS should be at least competitive with plain ILU(0) block Jacobi.
	b1 := solveCase(t, "tc1-poisson2d", 17, 4, precond.KindBlock1, nil)
	if res.Iterations > b1.Iterations {
		t.Fatalf("Block ARMS (%d) worse than Block 1 (%d)", res.Iterations, b1.Iterations)
	}
}

func TestRCMOrderedBlockThroughCore(t *testing.T) {
	plain := solveCase(t, "tc3-unstructured", 20, 4, precond.KindBlock2, func(cfg *core.Config) {
		cfg.ILUT.LFil = 4 // small fill: ordering quality matters
	})
	rcm := solveCase(t, "tc3-unstructured", 20, 4, precond.KindBlock2, func(cfg *core.Config) {
		cfg.ILUT.LFil = 4
		cfg.RCM = true
	})
	if !plain.Converged || !rcm.Converged {
		t.Fatal("convergence failure")
	}
	if rcm.TrueRelRes > 1e-5 {
		t.Fatalf("RCM solve residual %v", rcm.TrueRelRes)
	}
	t.Logf("plain=%d rcm=%d iterations", plain.Iterations, rcm.Iterations)
	if rcm.Iterations > plain.Iterations+3 {
		t.Fatalf("RCM ordering clearly worsened convergence: %d vs %d", rcm.Iterations, plain.Iterations)
	}
}

func TestMeshlessProblemSolves(t *testing.T) {
	// Strip the mesh from a case: the pattern-graph partitioner must take
	// over and everything still works.
	c, _ := cases.ByName("tc1-poisson2d")
	prob := c.Build(17)
	prob.Mesh = nil
	cfg := core.DefaultConfig(4, precond.KindSchur1)
	cfg.KeepX = true
	res, err := core.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.TrueRelRes > 1e-5 {
		t.Fatalf("mesh-less solve failed: %+v", res)
	}
}

func TestSessionWithSchwarzAndOverlap(t *testing.T) {
	c, _ := cases.ByName("tc1-poisson2d")
	const m = 25
	prob := c.Build(m)

	// Schwarz session.
	cfg := core.DefaultConfig(4, precond.KindNone)
	sw := precond.DefaultSchwarz(m, 2, 2, true)
	cfg.Schwarz = &sw
	cfg.KeepX = true
	sess, err := core.NewSession(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.TrueRelRes > 1e-5 {
		t.Fatalf("Schwarz session failed: %+v", res)
	}

	// Overlap-block session.
	cfg2 := core.DefaultConfig(4, precond.KindBlock2)
	cfg2.OverlapLevels = 1
	cfg2.KeepX = true
	sess2, err := core.NewSession(prob, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sess2.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Converged || res2.TrueRelRes > 1e-5 {
		t.Fatalf("overlap session failed: %+v", res2)
	}
}

func TestBlock2PivotThroughCore(t *testing.T) {
	// On the convection-dominated case the pivoting variant must converge
	// and match Block 2's quality.
	res := solveCase(t, "tc5-convdiff", 17, 4, precond.KindBlock2P, nil)
	if !res.Converged || res.TrueRelRes > 1e-5 {
		t.Fatalf("Block 2P failed: %+v", res)
	}
	b2 := solveCase(t, "tc5-convdiff", 17, 4, precond.KindBlock2, nil)
	if res.Iterations > 2*b2.Iterations+5 {
		t.Fatalf("Block 2P (%d) much worse than Block 2 (%d)", res.Iterations, b2.Iterations)
	}
}

func TestDistributedCGWithBlockIC(t *testing.T) {
	// The SPD path: distributed PCG with an SPD block preconditioner on
	// Test Case 1 must converge to the same solution as FGMRES.
	cg := solveCase(t, "tc1-poisson2d", 17, 4, precond.KindBlockIC, func(cfg *core.Config) {
		cfg.UseCG = true
		cfg.Solver.Flexible = false
	})
	if !cg.Converged || cg.TrueRelRes > 1e-5 {
		t.Fatalf("CG+BlockIC failed: %+v", cg)
	}
	fg := solveCase(t, "tc1-poisson2d", 17, 4, precond.KindBlockIC, nil)
	if !fg.Converged {
		t.Fatalf("FGMRES+BlockIC failed: %+v", fg)
	}
	// For SPD systems CG should be at least competitive with FGMRES(20).
	if cg.Iterations > 2*fg.Iterations {
		t.Fatalf("CG (%d) much slower than FGMRES (%d)", cg.Iterations, fg.Iterations)
	}
	t.Logf("CG=%d FGMRES=%d iterations", cg.Iterations, fg.Iterations)
}

func TestJumpCaseSchurBeatsBlocks(t *testing.T) {
	// The extension case: a 1000:1 coefficient jump. Schur 1 should hold
	// up much better than Block 1 — the same robustness axis the paper's
	// elasticity case probes.
	s1 := solveCase(t, "tc7-jump", 21, 4, precond.KindSchur1, nil)
	b1 := solveCase(t, "tc7-jump", 21, 4, precond.KindBlock1, nil)
	if !s1.Converged {
		t.Fatalf("Schur 1 failed on jump case: %+v", s1)
	}
	if s1.TrueRelRes > 1e-5 {
		t.Fatalf("Schur 1 residual %v", s1.TrueRelRes)
	}
	if b1.Converged && b1.Iterations <= s1.Iterations {
		t.Fatalf("expected Schur 1 (%d) to beat Block 1 (%d) on the jump case", s1.Iterations, b1.Iterations)
	}
	t.Logf("jump case: Schur1=%d, Block1=%d (converged=%v)", s1.Iterations, b1.Iterations, b1.Converged)
}

func TestJumpSchur1InnerItersRescue(t *testing.T) {
	// EXPERIMENTS.md EXT section: Schur 1's default inner B-solve (3 local
	// GMRES iterations) cannot resolve the 1000:1 coefficient jump at
	// larger sizes, while a stronger inner solve restores convergence.
	c, _ := cases.ByName("tc7-jump")
	prob := c.Build(65)
	run := func(inner int) *core.Result {
		cfg := core.DefaultConfig(4, precond.KindSchur1)
		cfg.Schur1.InnerIters = inner
		cfg.Solver.MaxIters = 300
		res, err := core.Solve(prob, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	weak := run(3)
	strong := run(8)
	if !strong.Converged {
		t.Fatalf("InnerIters=8 did not converge: %+v", strong)
	}
	if weak.Converged && weak.Iterations < strong.Iterations {
		t.Fatalf("expected the weak inner solve to struggle: weak %d vs strong %d",
			weak.Iterations, strong.Iterations)
	}
}

func TestCommFractionGrowsWithP(t *testing.T) {
	// Fixed global size: the modeled communication share of the total
	// time must grow with P — the effect behind the paper's remark that
	// fixed problem sizes favor smaller P (§4.3).
	frac := func(p int) float64 {
		res := solveCase(t, "tc1-poisson2d", 33, p, precond.KindBlock2, nil)
		var comm, clock float64
		for _, s := range res.PerRank {
			comm += s.CommTime
			clock += s.Clock
		}
		return comm / clock
	}
	f2, f16 := frac(2), frac(16)
	t.Logf("comm fraction: P=2 %.3f, P=16 %.3f", f2, f16)
	if f16 <= f2 {
		t.Fatalf("comm fraction did not grow with P: %.3f -> %.3f", f2, f16)
	}
}

func TestPerRankStatsConsistent(t *testing.T) {
	res := solveCase(t, "tc2-poisson3d", 7, 4, precond.KindSchur1, nil)
	for _, s := range res.PerRank {
		if s.Clock < s.ComputeTime {
			t.Fatalf("rank %d: clock %v < compute %v", s.Rank, s.Clock, s.ComputeTime)
		}
		if s.CommTime < 0 || s.Flops <= 0 {
			t.Fatalf("rank %d: bogus stats %+v", s.Rank, s)
		}
		if s.MsgsSent == 0 {
			t.Fatalf("rank %d sent no messages in a Schur solve", s.Rank)
		}
	}
}
