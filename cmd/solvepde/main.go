// Command solvepde solves one of the paper's six PDE test cases with a
// chosen parallel algebraic preconditioner and reports the paper's
// measurements (iteration count, modeled times) plus solution statistics.
//
// Usage:
//
//	solvepde -case tc1-poisson2d -p 8 -precond "Schur 1" -size 65
//	solvepde -list
//
// Chaos testing (see README "Chaos testing"): -faults injects a seeded
// deterministic fault plan and the run must either converge or end in a
// typed error — never hang, never panic:
//
//	solvepde -case tc1-poisson2d -p 4 -faults corrupt -faultseed 7 -resilient
//
// Multi-process runs (see README "Multi-process runs"): -transport socket
// runs every rank as its own OS process over a unix-socket hub, with
// durable checkpoint/restart — a SIGKILLed rank is respawned by the
// supervisor and the solve resumes from the last checkpoint:
//
//	solvepde -case tc1-poisson2d -p 4 -transport socket \
//	    -checkpoint /tmp/tc1.ckpt -checkpoint-every 10
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"

	"parapre"
	"parapre/internal/ckpt"
	"parapre/internal/core"
	"parapre/internal/dist"
	"parapre/internal/dist/socket"
	"parapre/internal/mprun"
	"parapre/internal/obs"
	"parapre/internal/precond"
)

func mathLog10(x float64) float64 {
	if x <= 0 {
		return -18
	}
	return math.Log10(x)
}

func main() {
	var (
		list    = flag.Bool("list", false, "list test cases and exit")
		name    = flag.String("case", "tc1-poisson2d", "test case name")
		p       = flag.Int("p", 4, "number of (simulated) processors")
		size    = flag.Int("size", 0, "grid resolution parameter (0 = case default)")
		kind    = flag.String("precond", "Schur 1", `preconditioner: "Schur 1", "Schur 2", "MSLR", "Block 1", "Block 2", "None"`)
		machine = flag.String("machine", "cluster", "machine model: cluster | origin")
		simple  = flag.Bool("simple", false, "use the simple (box) partitioning scheme")
		verify  = flag.Bool("verify", false, "compare against a tight sequential reference solve")
		history = flag.Bool("history", false, "print the residual convergence curve")
		stats   = flag.Bool("stats", false, "print the per-rank compute/communication breakdown")

		faults    = flag.String("faults", "", `chaos plan: "drop", "delay", "corrupt", "straggler" or "crash"`)
		faultSeed = flag.Int64("faultseed", 1, "chaos plan seed (same seed ⇒ same faults)")
		watchdog  = flag.Duration("watchdog", 0, "deadlock watchdog budget (0 = default with -faults, off otherwise)")
		resilient = flag.Bool("resilient", false, "self-heal breakdowns: fresh restart, then fallback preconditioner")

		trace   = flag.String("trace", "", "write a Chrome trace-event JSON of the solve (open in chrome://tracing or Perfetto)")
		metrics = flag.String("metrics", "", "write a Prometheus-style text metrics snapshot of the solve")
		phases  = flag.Bool("phases", false, "print the per-phase virtual-time breakdown")
		pprofOn = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")

		transport = flag.String("transport", "chan", `rank transport: "chan" (in-process goroutines, default) or "socket" (one OS process per rank)`)
		ckptPath  = flag.String("checkpoint", "", "durable checkpoint file, rewritten atomically every -checkpoint-every iterations")
		ckptEvery = flag.Int("checkpoint-every", 0, "checkpoint the solver recurrence every N iterations (0 = off)")
		restore   = flag.String("restore", "", "resume the solve mid-recurrence from this checkpoint file")

		dieRank = flag.Int("die-rank", -1, "chaos: SIGKILL this rank's worker process at -die-at-iter (socket transport only)")
		dieAt   = flag.Int("die-at-iter", 0, "chaos: the checkpoint iteration at which -die-rank kills itself")

		sockWorker = flag.Bool("socket-worker", false, "internal: run as one rank of a socket-transport world")
		sockRank   = flag.Int("rank", -1, "internal: this worker's rank")
		hubNet     = flag.String("hub-net", "unix", "internal: hub network")
		hubAddr    = flag.String("hub-addr", "", "internal: hub address")
	)
	flag.Parse()

	if *pprofOn != "" {
		go func() {
			if err := http.ListenAndServe(*pprofOn, nil); err != nil {
				fmt.Fprintln(os.Stderr, "solvepde: pprof:", err)
			}
		}()
	}

	if *list {
		for _, c := range parapre.Cases() {
			fmt.Printf("%-18s %s\n", c.Name, c.Description)
		}
		return
	}

	var found bool
	var sz int
	for _, c := range parapre.Cases() {
		if c.Name == *name {
			found = true
			sz = c.DefaultSize
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "solvepde: unknown case %q (try -list)\n", *name)
		os.Exit(2)
	}
	if *size > 0 {
		sz = *size
	}

	prob := parapre.BuildCase(*name, sz)
	cfg := parapre.DefaultConfig(*p, precond.Kind(*kind))
	if *machine == "origin" {
		cfg.Machine = parapre.Origin3800()
	}
	if *simple {
		cfg.Scheme = parapre.PartitionSimple
	}
	cfg.KeepX = *verify
	cfg.Solver.RecordHistory = *history
	cfg.Watchdog = *watchdog
	cfg.Resilient = *resilient
	cfg.CheckpointEvery = *ckptEvery

	if *sockWorker {
		if *sockRank < 0 || *sockRank >= *p || *hubAddr == "" {
			fmt.Fprintf(os.Stderr, "solvepde: bad worker wiring: rank %d of P=%d, hub %q\n", *sockRank, *p, *hubAddr)
			os.Exit(2)
		}
		os.Exit(runSocketWorker(prob, cfg, *sockRank, *hubNet, *hubAddr, *dieRank, *dieAt, *restore))
	}
	switch *transport {
	case "chan":
		cfg.CheckpointPath = *ckptPath
		if *restore != "" {
			ck, lerr := ckpt.Load(*restore)
			if lerr != nil {
				fmt.Fprintln(os.Stderr, "solvepde: restore:", lerr)
				os.Exit(1)
			}
			cfg.Restore = ck
		}
	case "socket":
		for _, bad := range []struct {
			set  bool
			flag string
		}{
			{*faults != "", "-faults"},
			{*verify, "-verify"},
			{*history, "-history"},
			{*stats, "-stats"},
			{*trace != "", "-trace"},
			{*metrics != "", "-metrics"},
			{*phases, "-phases"},
			{*watchdog != 0, "-watchdog"},
		} {
			if bad.set {
				fmt.Fprintf(os.Stderr, "solvepde: %s is in-process machinery; drop it for -transport socket (chaos there is real: -die-rank)\n", bad.flag)
				os.Exit(2)
			}
		}
		fmt.Printf("case %s: %d unknowns, P = %d, %s, socket transport (one OS process per rank)\n",
			*name, prob.A.Rows, *p, *kind)
		os.Exit(runSupervisor(socketRun{
			name: *name, size: sz, p: *p, kind: *kind, machine: *machine,
			simple: *simple, resilient: *resilient,
			ckptPath: *ckptPath, ckptEvery: *ckptEvery, restorePath: *restore,
			dieRank: *dieRank, dieAt: *dieAt,
		}))
	default:
		fmt.Fprintf(os.Stderr, "solvepde: unknown -transport %q (chan | socket)\n", *transport)
		os.Exit(2)
	}
	chaos := *faults != ""
	if chaos {
		plan, err := parapre.NamedFaultPlan(*faults, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "solvepde:", err)
			os.Exit(2)
		}
		cfg.Faults = plan
	}
	label := fmt.Sprintf("%s/%s/P=%d", *name, *kind, *p)
	if *trace != "" || *metrics != "" || *phases {
		cfg.Collector = obs.NewCollector()
	}

	fmt.Printf("case %s: %d unknowns, P = %d, %s, %s partitioning, machine %s\n",
		*name, prob.A.Rows, *p, *kind, map[bool]string{false: "general", true: "simple"}[*simple],
		cfg.Machine.Name)
	if chaos {
		fmt.Printf("chaos: plan %q seed %d (converge-or-typed-error contract)\n", *faults, *faultSeed)
	}

	res, err := parapre.Solve(prob, cfg)
	if err != nil {
		// Under chaos the contract is converge OR typed error: a deadlock
		// or crash report is a successful detection, not a tool failure.
		// The spans and counters recorded up to the failure are still
		// exported — a trace of a deadlock is exactly what one wants.
		if chaos && reportFault(err) {
			writeObs(cfg.Collector, label, *trace, *metrics)
			return
		}
		fmt.Fprintln(os.Stderr, "solvepde:", err)
		os.Exit(1)
	}
	writeObs(cfg.Collector, label, *trace, *metrics)
	status := "converged"
	if !res.Converged {
		status = "NOT converged"
	}
	fmt.Printf("%s in %d FGMRES(20) iterations (relative residual %.2e)\n",
		status, res.Iterations, res.Residual)
	if res.Err != nil {
		fmt.Printf("solver error: %v\n", res.Err)
	}
	if res.Recovery != nil && len(res.Recovery.Steps) > 0 {
		fmt.Println("recovery log:")
		for _, st := range res.Recovery.Steps {
			outcome := "failed"
			if st.Converged {
				outcome = "converged"
			}
			fmt.Printf("  stage %-12s attempt %d: %s after %d iterations", st.Stage, st.Attempt, outcome, st.Iterations)
			if st.Err != nil {
				fmt.Printf(" (%v)", st.Err)
			}
			fmt.Println()
		}
		if res.Recovery.Recovered {
			fmt.Println("  solve recovered by the escalation ladder")
		}
	}
	fmt.Printf("modeled time: setup %.4fs + solve %.4fs = %.4fs\n",
		res.SetupTime, res.SolveTime, res.SetupTime+res.SolveTime)
	var msgs, bytes int
	for _, s := range res.PerRank {
		msgs += s.MsgsSent
		bytes += s.BytesSent
	}
	fmt.Printf("communication: %d messages, %.1f KiB total\n", msgs, float64(bytes)/1024)

	if *stats {
		fmt.Println("per-rank breakdown (modeled):")
		fmt.Printf("  %-5s %-11s %-11s %-10s %-10s %-9s %-10s\n", "rank", "compute(s)", "comm(s)", "fault(s)", "comm%", "msgs", "Mflops")
		for _, s := range res.PerRank {
			fmt.Printf("  %-5d %-11.4f %-11.4f %-10.4f %-10.1f %-9d %-10.1f\n",
				s.Rank, s.ComputeTime, s.CommTime, s.FaultDelay, 100*s.CommTime/s.Clock, s.MsgsSent, s.Flops/1e6)
		}
	}

	if *phases && len(res.PhaseBreakdown) > 0 {
		fmt.Println("per-phase breakdown (modeled, virtual seconds):")
		fmt.Printf("  %-15s %-8s %-12s %-12s %-12s %-10s\n", "phase", "spans", "total(s)", "max-rank(s)", "Mflops", "KiB")
		for _, ps := range res.PhaseBreakdown {
			fmt.Printf("  %-15s %-8d %-12.4f %-12.4f %-12.1f %-10.1f\n",
				ps.Phase, ps.Count, ps.TotalSeconds, ps.MaxSeconds, ps.Flops/1e6, float64(ps.Bytes)/1024)
		}
	}

	if *history && len(res.History) > 0 {
		fmt.Println("residual convergence (relative to initial):")
		r0 := res.History[0]
		for i, r := range res.History {
			bar := int(60 + 6*mathLog10(r/r0)) // 60 chars at 1.0, −10 chars per decade
			if bar < 0 {
				bar = 0
			}
			fmt.Printf("  %4d  %9.3e  %s\n", i, r/r0, strings.Repeat("#", bar))
		}
	}

	if *verify {
		d, err := parapre.Verify(prob, res.X)
		if err != nil {
			fmt.Fprintln(os.Stderr, "solvepde: verify:", err)
			os.Exit(1)
		}
		fmt.Printf("max |x − x_ref| = %.3e (true relative residual %.2e)\n", d, res.TrueRelRes)
	}
}

// writeObs exports the recorded observability data to the requested
// files. Nil collector or empty paths are no-ops.
func writeObs(col *obs.Collector, label, tracePath, metricsPath string) {
	if col == nil {
		return
	}
	if tracePath != "" {
		entry := obs.TraceEntry{Name: label, PID: 0, Collector: col}
		if err := obs.WriteChromeTraceFile(tracePath, []obs.TraceEntry{entry}, obs.TraceOptions{}); err != nil {
			fmt.Fprintln(os.Stderr, "solvepde: trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote trace %s (open in chrome://tracing or https://ui.perfetto.dev)\n", tracePath)
	}
	if metricsPath != "" {
		if err := col.WriteMetricsFile(metricsPath, map[string]string{"solve": label}); err != nil {
			fmt.Fprintln(os.Stderr, "solvepde: metrics:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics %s\n", metricsPath)
	}
}

// runSocketWorker is the internal worker mode: one rank of a socket
// world. It dials the hub, loads the restore checkpoint when given, and
// runs exactly this rank's share of the solve; rank 0 prints the result
// line the supervisor's terminal shows.
func runSocketWorker(prob *core.Problem, cfg core.Config, rank int, network, addr string, dieRank, dieAt int, restorePath string) int {
	if restorePath != "" {
		ck, err := ckpt.Load(restorePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "solvepde: rank %d restore: %v\n", rank, err)
			return 1
		}
		cfg.Restore = ck
	}
	cl, err := socket.Dial(network, addr, cfg.P, rank, socket.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "solvepde: rank %d: %v\n", rank, err)
		return 1
	}
	defer cl.Close()
	var sink ckpt.Sink = cl
	if rank == dieRank && dieAt > 0 && restorePath == "" {
		// Deterministic chaos: SIGKILL ourselves right after shipping the
		// shard of the trigger iteration — first life only, so the
		// respawned world runs to completion.
		sink = mprun.DieAtSink{Sink: cl, Iter: uint64(dieAt)}
	}
	res, _, err := core.SolveRank(prob, cfg, rank, cl, sink)
	if err != nil {
		fmt.Fprintf(os.Stderr, "solvepde: rank %d: %v\n", rank, err)
		return 1
	}
	if rank == 0 {
		status := "converged"
		if !res.Converged {
			status = "NOT converged"
		}
		rel := res.Final
		if res.Initial > 0 {
			rel = res.Final / res.Initial
		}
		fmt.Printf("%s in %d FGMRES(%d) iterations (relative residual %.2e)\n",
			status, res.Iterations, cfg.Solver.Restart, rel)
	}
	return 0
}

// socketRun carries the parsed flag values the supervisor needs to
// rebuild each worker's argv (the re-exec pattern: solvepde is its own
// worker binary).
type socketRun struct {
	name, kind, machine   string
	size, p               int
	simple, resilient     bool
	ckptPath, restorePath string
	ckptEvery             int
	dieRank, dieAt        int
}

// runSupervisor hosts the hub and checkpoint writer and supervises one
// worker process per rank, respawning the world from the last durable
// checkpoint when a rank dies.
func runSupervisor(sr socketRun) int {
	if sr.ckptEvery > 0 && sr.ckptPath == "" {
		fmt.Fprintln(os.Stderr, "solvepde: -checkpoint-every over -transport socket needs -checkpoint (the hub owns the file)")
		return 2
	}
	err := mprun.Supervise(mprun.Options{
		P:              sr.p,
		CheckpointPath: sr.ckptPath,
		Log:            os.Stderr,
		Args: func(rank int, network, addr string, restore bool) []string {
			args := []string{
				"-socket-worker",
				"-rank", strconv.Itoa(rank),
				"-hub-net", network,
				"-hub-addr", addr,
				"-case", sr.name,
				"-size", strconv.Itoa(sr.size),
				"-p", strconv.Itoa(sr.p),
				"-precond", sr.kind,
				"-machine", sr.machine,
			}
			if sr.simple {
				args = append(args, "-simple")
			}
			if sr.resilient {
				args = append(args, "-resilient")
			}
			if sr.ckptEvery > 0 {
				args = append(args, "-checkpoint-every", strconv.Itoa(sr.ckptEvery))
			}
			switch {
			case restore:
				args = append(args, "-restore", sr.ckptPath)
			case sr.restorePath != "":
				args = append(args, "-restore", sr.restorePath)
			}
			if sr.dieRank >= 0 && sr.dieAt > 0 {
				args = append(args, "-die-rank", strconv.Itoa(sr.dieRank), "-die-at-iter", strconv.Itoa(sr.dieAt))
			}
			return args
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "solvepde:", err)
		return 1
	}
	return 0
}

// reportFault prints a typed runtime failure of a chaos run and reports
// whether the error satisfies the converge-or-typed-error contract. An
// escaped rank panic or any other error is a real failure and returns
// false.
func reportFault(err error) bool {
	var de *parapre.DeadlockError
	var ce *parapre.CrashError
	switch {
	case errors.As(err, &de):
		fmt.Printf("typed failure: %v\n", de)
		fmt.Println("per-rank diagnostics at abort:")
		for _, r := range de.Ranks {
			state := "running"
			switch {
			case r.Crashed:
				state = "crashed"
			case r.Done:
				state = "done"
			case r.Blocked:
				state = "blocked"
			}
			fmt.Printf("  rank %-3d %-8s last op %-10s peer %-3d tag %-4d clock %.6fs (%d ops)\n",
				r.Rank, state, r.LastOp, r.Peer, r.Tag, r.Clock, r.Ops)
		}
		return true
	case errors.As(err, &ce):
		fmt.Printf("typed failure: %v\n", ce)
		return true
	default:
		var pc *dist.PeerCrashedError
		var tm *dist.TagMismatchError
		if errors.As(err, &pc) || errors.As(err, &tm) {
			fmt.Printf("typed failure: %v\n", err)
			return true
		}
	}
	return false
}
