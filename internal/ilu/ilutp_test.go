package ilu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parapre/internal/sparse"
)

// shiftedSystem builds a matrix with a structurally zero diagonal (a
// circulant shift plus small noise) — hopeless for ILUT, trivial with
// column pivoting.
func shiftedSystem(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n, 2*n)
	for i := 0; i < n; i++ {
		coo.Add(i, (i+1)%n, 5)   // dominant off-diagonal
		coo.Add(i, (i+3)%n, 0.5) // some extra structure
		coo.Add(i, i, 0)         // explicit zero diagonal
	}
	return coo.ToCSR()
}

func TestILUTPSolvesZeroDiagonalSystem(t *testing.T) {
	n := 20
	a := shiftedSystem(n)
	p, err := ILUTP(a, ILUTPOptions{ILUTOptions: ILUTOptions{Tau: 0, LFil: 0}, PermTol: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Swaps == 0 {
		t.Fatal("no pivoting on a zero-diagonal matrix")
	}
	rng := rand.New(rand.NewSource(1))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.MulVec(xTrue)
	x := make([]float64, n)
	p.Solve(x, b)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
	// Plain ILUT must have needed pivot fixes on this matrix (its
	// diagonal is structurally zero), confirming ILUTP is the right tool.
	f, err := ILUT(a, ILUTOptions{Tau: 0, LFil: 0})
	if err != nil {
		t.Fatal(err)
	}
	if f.PivotFixes == 0 {
		t.Fatal("expected plain ILUT to hit zero pivots here")
	}
}

func TestILUTPNoPivotingMatchesILUT(t *testing.T) {
	// On a diagonally dominant matrix with PermTol small, no swap fires
	// and the factors coincide with plain ILUT.
	rng := rand.New(rand.NewSource(2))
	a := randSPDish(rng, 30, 0.2)
	opt := ILUTOptions{Tau: 1e-3, LFil: 10}
	p, err := ILUTP(a, ILUTPOptions{ILUTOptions: opt, PermTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if p.Swaps != 0 {
		t.Fatalf("unexpected swaps on dominant matrix: %d", p.Swaps)
	}
	f, err := ILUT(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if p.LU.NNZ() != f.NNZ() {
		t.Fatalf("nnz differ: %d vs %d", p.LU.NNZ(), f.NNZ())
	}
	for k := range f.M.Val {
		if math.Abs(p.LU.M.Val[k]-f.M.Val[k]) > 1e-12 {
			t.Fatalf("value %d differs", k)
		}
	}
}

func TestILUTPCompleteEqualsDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(16)
		// General random matrix with possibly weak diagonal.
		coo := sparse.NewCOO(n, n, n*5)
		for i := 0; i < n; i++ {
			coo.Add(i, i, rng.NormFloat64()*0.1)
			for k := 0; k < 4; k++ {
				j := rng.Intn(n)
				if j != i {
					coo.Add(i, j, rng.NormFloat64())
				}
			}
		}
		a := coo.ToCSR()
		df, err := a.Dense().Factor()
		if err != nil {
			return true // singular draw: skip
		}
		p, err := ILUTP(a, ILUTPOptions{ILUTOptions: ILUTOptions{Tau: 0, LFil: 0}, PermTol: 1})
		if err != nil {
			t.Logf("ILUTP: %v", err)
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := df.Solve(b)
		got := make([]float64, n)
		p.Solve(got, b)
		for i := range want {
			scale := 1 + math.Abs(want[i])
			if math.Abs(got[i]-want[i]) > 1e-5*scale {
				t.Logf("seed %d: x[%d] = %v, want %v (swaps %d)", seed, i, got[i], want[i], p.Swaps)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestILUTPPermutationValid(t *testing.T) {
	a := shiftedSystem(15)
	p, err := ILUTP(a, ILUTPOptions{ILUTOptions: ILUTOptions{Tau: 0, LFil: 0}, PermTol: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Perm.IsValid() {
		t.Fatal("invalid permutation")
	}
	if err := p.LU.M.CheckValid(); err != nil {
		t.Fatal(err)
	}
	if p.SolveFlops() <= 0 {
		t.Fatal("SolveFlops")
	}
}

func TestILUTPRejectsNonSquare(t *testing.T) {
	if _, err := ILUTP(sparse.NewCSR(2, 3, 0), ILUTPOptions{}); err == nil {
		t.Fatal("non-square accepted")
	}
}
