// Package positive holds code every determinism run must flag.
package positive

import (
	"math/rand"
	"time"
)

// FlattenMap writes float values out of a map iteration: the output
// ordering depends on Go's randomized map walk.
func FlattenMap(m map[int]float64, out []float64) {
	i := 0
	for _, v := range m { // WANT determinism
		out[i] = v
		i++
	}
}

// SumMap accumulates floats in map order; float addition is not
// associative, so the sum depends on the walk.
func SumMap(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // WANT determinism
		s += v
	}
	return s
}

// Perturb injects the global random source into a numeric slice.
func Perturb(x []float64) {
	for i := range x {
		x[i] += rand.Float64() // WANT determinism
	}
}

// Stamp leaks the wall clock into a numeric result.
func Stamp() float64 {
	return float64(time.Now().UnixNano()) // WANT determinism
}
