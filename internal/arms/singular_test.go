package arms

import (
	"errors"
	"testing"

	"parapre/internal/ilu"
	"parapre/internal/sparse"
)

// Regression for the singular-input path: a matrix with a structurally
// empty row must make New fail loudly instead of handing back a hierarchy
// whose last-level factorization silently floored the zero pivot. The
// empty row reaches either a dense block factorization (singular-matrix
// error) or the final ILUT (typed zero-pivot error), depending on where
// the independent-set pass places it; both must surface through New.
func TestARMSZeroRowReturnsError(t *testing.T) {
	coo := sparse.NewCOO(6, 6, 16)
	for i := 0; i < 6; i++ {
		if i == 3 {
			continue // row 3 is structurally empty
		}
		coo.Add(i, i, 4)
		if i > 0 && i != 4 {
			coo.Add(i, i-1, -1)
		}
		if i < 5 && i != 2 {
			coo.Add(i, i+1, -1)
		}
	}
	a := coo.ToCSR()
	for _, maxG := range []int{1, 2, 6} {
		opt := DefaultOptions()
		opt.MaxGroup = maxG
		opt.ILUT = ilu.ILUTOptions{Tau: 0, LFil: 0}
		s, err := New(a, opt)
		if err == nil {
			t.Errorf("maxGroup=%d: zero-row matrix accepted (solver %v)", maxG, s != nil)
			continue
		}
		var zp *ilu.ZeroPivotError
		if !errors.As(err, &zp) && !errors.Is(err, ilu.ErrZeroPivot) {
			// The dense-block path reports its own singular-matrix error;
			// that is fine too, as long as it is an error.
			t.Logf("maxGroup=%d: non-typed singular error: %v", maxG, err)
		}
	}
}

// A 1×1 matrix admits no independent-set reduction (nB would equal n), so
// the hierarchy must degenerate to a single exact ILUT level.
func TestARMSOneByOne(t *testing.T) {
	coo := sparse.NewCOO(1, 1, 1)
	coo.Add(0, 0, 5)
	s, err := New(coo.ToCSR(), DefaultOptions())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	z := make([]float64, 1)
	s.Apply(z, []float64{10})
	if z[0] != 2 {
		t.Errorf("1×1 solve: got %g, want 2", z[0])
	}
}

// Reduce must report "no reduction" (nil, nil) rather than a degenerate
// Reduction when every unknown lands in the grouped part.
func TestReduceFullyGroupedIsNil(t *testing.T) {
	// Diagonal matrix: every vertex is independent, so with a large group
	// cap the whole matrix is grouped and nB == n.
	coo := sparse.NewCOO(4, 4, 4)
	for i := 0; i < 4; i++ {
		coo.Add(i, i, float64(i+1))
	}
	red, err := Reduce(coo.ToCSR(), 8, 0)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if red != nil {
		t.Errorf("diagonal matrix produced a reduction with nB=%d, want nil (no reduction)", red.NB)
	}
}
