package precond

import (
	"math"
	"testing"

	"parapre/internal/arms"
	"parapre/internal/dist"
	"parapre/internal/dsys"
	"parapre/internal/ilu"
	"parapre/internal/krylov"
)

func TestNamesMatchPaperNotation(t *testing.T) {
	systems, _, _ := buildPoisson(t, 11, 2, 30)
	s := systems[0]
	b1, err := NewBlock1(s)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Name() != "Block 1" {
		t.Fatalf("Block1 name %q", b1.Name())
	}
	b2, err := NewBlock2(s, ilu.DefaultILUT())
	if err != nil {
		t.Fatal(err)
	}
	if b2.Name() != "Block 2" {
		t.Fatalf("Block2 name %q", b2.Name())
	}
	s1, err := NewSchur1(s, DefaultSchur1())
	if err != nil {
		t.Fatal(err)
	}
	if s1.Name() != "Schur 1" {
		t.Fatalf("Schur1 name %q", s1.Name())
	}
	s2, err := NewSchur2(s, DefaultSchur2())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Name() != "Schur 2" {
		t.Fatalf("Schur2 name %q", s2.Name())
	}
	ba, err := NewBlockARMS(s, arms.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ba.Name() != "Block ARMS" {
		t.Fatalf("BlockARMS name %q", ba.Name())
	}
	if b1.FactorNNZ() <= 0 || b2.FactorNNZ() <= 0 {
		t.Fatal("FactorNNZ")
	}
	if s1.SetupFlops() <= 0 || s2.SetupFlops() <= 0 || ba.SetupFlops() <= 0 {
		t.Fatal("SetupFlops")
	}
}

func TestBlockARMSConverges(t *testing.T) {
	const m, p = 17, 4
	systems, a, b := buildPoisson(t, m, p, 31)
	want := refSolution(t, a, b)
	it, x := solveWith(t, systems, p, func(s *dsys.System) Preconditioner {
		pc, err := NewBlockARMS(s, arms.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return pc
	})
	checkClose(t, x, want, 2e-4, "Block ARMS")
	itPlain, _ := solveWith(t, systems, p, func(s *dsys.System) Preconditioner { return nil })
	if it >= itPlain {
		t.Fatalf("Block ARMS (%d) not better than unpreconditioned (%d)", it, itPlain)
	}
}

func TestSchur1OnSimpleBoxPartition(t *testing.T) {
	// The Schur machinery must work on any partition shape, including the
	// §5.1 boxes.
	const m, px, py = 17, 2, 2
	const p = px * py
	systems, a, b := buildPoissonBoxes(t, m, px, py)
	want := refSolution(t, a, b)
	_, x := solveWith(t, systems, p, func(s *dsys.System) Preconditioner {
		pc, err := NewSchur1(s, DefaultSchur1())
		if err != nil {
			t.Fatal(err)
		}
		return pc
	})
	checkClose(t, x, want, 2e-4, "Schur1/boxes")
}

func TestSchur1MoreInnerItersNeverHurtsOuter(t *testing.T) {
	// Strengthening the inner Schur solve must not increase outer
	// iteration counts (monotone quality dial).
	const m, p = 17, 4
	systems, _, _ := buildPoisson(t, m, p, 32)
	prev := math.MaxInt32
	for _, inner := range []int{1, 3, 8} {
		opts := DefaultSchur1()
		opts.SchurIters = inner
		it, _ := solveWith(t, systems, p, func(s *dsys.System) Preconditioner {
			pc, err := NewSchur1(s, opts)
			if err != nil {
				t.Fatal(err)
			}
			return pc
		})
		if it > prev {
			t.Fatalf("SchurIters=%d gave %d outer iterations, worse than weaker setting (%d)", inner, it, prev)
		}
		prev = it
	}
}

func TestSchur2DropTolTradesQuality(t *testing.T) {
	// Very aggressive dropping in the expanded Schur assembly must not
	// break convergence, only (possibly) slow it.
	const m, p = 15, 3
	systems, a, b := buildPoisson(t, m, p, 33)
	want := refSolution(t, a, b)
	for _, drop := range []float64{0, 1e-2} {
		opts := DefaultSchur2()
		opts.DropTol = drop
		_, x := solveWith(t, systems, p, func(s *dsys.System) Preconditioner {
			pc, err := NewSchur2(s, opts)
			if err != nil {
				t.Fatal(err)
			}
			return pc
		})
		checkClose(t, x, want, 2e-4, "Schur2 drop")
	}
}

func TestPreconditionersOnOriginMachineModel(t *testing.T) {
	// The machine model must not change the mathematics: same partition,
	// different machine → identical iteration counts.
	const m, p = 13, 3
	systems, _, _ := buildPoisson(t, m, p, 34)
	run := func(mach *dist.Machine) int {
		iters := make([]int, p)
		dist.Run(p, mach, func(c *dist.Comm) {
			s := systems[c.Rank()]
			pc, err := NewSchur1(s, DefaultSchur1())
			if err != nil {
				t.Error(err)
				return
			}
			x := make([]float64, s.NLoc())
			res := distributedSolve(c, s, pc, x)
			iters[c.Rank()] = res
		})
		return iters[0]
	}
	a := run(dist.LinuxCluster())
	b := run(dist.Origin3800())
	if a != b {
		t.Fatalf("machine model changed iteration count: %d vs %d", a, b)
	}
}

// distributedSolve is a tiny local helper mirroring solveWith for a
// single preconditioner instance.
func distributedSolve(c *dist.Comm, s *dsys.System, pc Preconditioner, x []float64) int {
	res := krylov.Distributed(c, s, func(z, r []float64) { pc.Apply(c, z, r) }, s.B, x,
		krylov.Options{Restart: 20, MaxIters: 500, Tol: 1e-6, Flexible: true})
	return res.Iterations
}

func TestBlockOrderedDirect(t *testing.T) {
	const m, p = 17, 3
	systems, a, b := buildPoisson(t, m, p, 36)
	want := refSolution(t, a, b)
	for _, useILU0 := range []bool{true, false} {
		_, x := solveWith(t, systems, p, func(s *dsys.System) Preconditioner {
			pc, err := NewBlockOrdered(s, useILU0, ilu.DefaultILUT())
			if err != nil {
				t.Fatal(err)
			}
			if pc.FactorNNZ() <= 0 {
				t.Fatal("FactorNNZ")
			}
			return pc
		})
		checkClose(t, x, want, 2e-4, "ordered block")
	}
	// Names must advertise the ordering.
	pc, err := NewBlockOrdered(systems[0], true, ilu.DefaultILUT())
	if err != nil {
		t.Fatal(err)
	}
	if pc.Name() != "Block 1 (RCM)" {
		t.Fatalf("name %q", pc.Name())
	}
}

func TestSchwarzAccessors(t *testing.T) {
	const m, px, py = 13, 2, 1
	systems, a, _ := buildPoissonBoxes(t, m, px, py)
	sw, err := NewSchwarz(systems[0], a, DefaultSchwarz(m, px, py, true))
	if err != nil {
		t.Fatal(err)
	}
	if sw.Name() != "AddSchwarz+CGC" {
		t.Fatalf("name %q", sw.Name())
	}
	if sw.SetupFlops() <= 0 {
		t.Fatal("SetupFlops")
	}
	sw2, err := NewSchwarz(systems[1], a, DefaultSchwarz(m, px, py, false))
	if err != nil {
		t.Fatal(err)
	}
	if sw2.Name() != "AddSchwarz" {
		t.Fatalf("name %q", sw2.Name())
	}
}

func TestTinySubdomainsAllPreconditioners(t *testing.T) {
	// P=12 on a 7×7 grid: ~4 nodes per subdomain, many of them entirely
	// interface (NInt = 0) — the degenerate paths of the Schur variants.
	const m, p = 7, 12
	systems, a, b := buildPoisson(t, m, p, 40)
	want := refSolution(t, a, b)
	mks := map[string]func(s *dsys.System) Preconditioner{
		"Block 1": func(s *dsys.System) Preconditioner {
			pc, err := NewBlock1(s)
			if err != nil {
				t.Fatal(err)
			}
			return pc
		},
		"Schur 1": func(s *dsys.System) Preconditioner {
			pc, err := NewSchur1(s, DefaultSchur1())
			if err != nil {
				t.Fatal(err)
			}
			return pc
		},
		"Schur 2": func(s *dsys.System) Preconditioner {
			pc, err := NewSchur2(s, DefaultSchur2())
			if err != nil {
				t.Fatal(err)
			}
			return pc
		},
	}
	// Confirm the degenerate situation actually occurs.
	deg := 0
	for _, s := range systems {
		if s.NInt == 0 {
			deg++
		}
	}
	if deg == 0 {
		t.Log("no all-interface subdomain arose; test still exercises tiny blocks")
	}
	for name, mk := range mks {
		_, x := solveWith(t, systems, p, mk)
		checkClose(t, x, want, 2e-4, name)
	}
}

func TestBlockPivotAndBlockICDirect(t *testing.T) {
	const m, p = 15, 3
	systems, a, b := buildPoisson(t, m, p, 41)
	want := refSolution(t, a, b)

	_, x := solveWith(t, systems, p, func(s *dsys.System) Preconditioner {
		pc, err := NewBlock2Pivot(s, ilu.ILUTPOptions{ILUTOptions: ilu.DefaultILUT(), PermTol: 1})
		if err != nil {
			t.Fatal(err)
		}
		if pc.Name() != "Block 2P" || pc.SetupFlops() <= 0 || pc.Swaps() < 0 {
			t.Fatal("BlockPivot accessors")
		}
		return pc
	})
	checkClose(t, x, want, 2e-4, "Block 2P")

	_, x = solveWith(t, systems, p, func(s *dsys.System) Preconditioner {
		pc, err := NewBlockIC(s)
		if err != nil {
			t.Fatal(err)
		}
		if pc.Name() != "Block IC" || pc.SetupFlops() <= 0 {
			t.Fatal("BlockIC accessors")
		}
		return pc
	})
	checkClose(t, x, want, 2e-4, "Block IC")
}
