// Command paracheck runs the differential-oracle verification harness:
// every numerical layer (sparse kernels, factorizations, Schur operators,
// preconditioners, distributed solvers) is cross-checked against an
// independent reference on seeded random problems and on the paper's test
// cases. A non-zero exit status means at least one oracle disagreed — a
// real numerical bug, with a minimized reproducer in the output.
//
// Usage:
//
//	paracheck            full run, seed 1
//	paracheck -quick     CI smoke run (smallest sizes only)
//	paracheck -all       full run (explicit form of the default)
//	paracheck -seed 7    re-seed every generator (the weekly CI run
//	                     passes a randomized seed)
//	paracheck -check schur   run only checks whose name contains "schur"
//	paracheck -list      print the check registry and exit
//	paracheck -v         per-check progress on stderr
package main

import (
	"flag"
	"fmt"
	"os"

	"parapre/internal/verify"
)

func main() {
	quick := flag.Bool("quick", false, "smoke mode: smallest sizes and trial counts only")
	all := flag.Bool("all", false, "full run (the default; -all and -quick are mutually exclusive)")
	seed := flag.Int64("seed", 1, "base seed for every generator")
	check := flag.String("check", "", "run only checks whose name contains this substring")
	list := flag.Bool("list", false, "print the check registry and exit")
	verbose := flag.Bool("v", false, "per-check progress on stderr")
	flag.Parse()

	if *list {
		for _, ck := range verify.Checks() {
			fmt.Printf("%-22s %s\n", ck.Name, ck.Desc)
		}
		return
	}
	if *quick && *all {
		fmt.Fprintln(os.Stderr, "paracheck: -quick and -all are mutually exclusive")
		os.Exit(2)
	}

	cfg := verify.Config{Seed: *seed, Quick: *quick}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	rep := verify.Run(cfg, *check)
	if len(rep.Ran) == 0 {
		fmt.Fprintf(os.Stderr, "paracheck: no check matches -check %q\n", *check)
		os.Exit(2)
	}
	fmt.Print(rep.Summary())
	if rep.Failed() {
		os.Exit(1)
	}
}
