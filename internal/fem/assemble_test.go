package fem

import (
	"math"
	"testing"

	"parapre/internal/grid"
	"parapre/internal/sparse"
)

// solveDense is the direct-solver oracle for small assembled systems.
func solveDense(t *testing.T, a *sparse.CSR, b []float64) []float64 {
	t.Helper()
	f, err := a.Dense().Factor()
	if err != nil {
		t.Fatalf("dense factor: %v", err)
	}
	return f.Solve(b)
}

func isSymmetric(a *sparse.CSR, tol float64) bool {
	at := a.Transpose()
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if math.Abs(vals[k]-at.At(i, j)) > tol {
				return false
			}
		}
	}
	return true
}

func TestStiffnessRowSumsZero(t *testing.T) {
	// Constants are in the nullspace of the pure Neumann operator, in 2D
	// and 3D, with and without convection (∇·(v·const) = 0 too).
	meshes := []*grid.Mesh{grid.UnitSquareTri(6), grid.UnitCubeTet(3), grid.PlateWithHole(12)}
	for _, m := range meshes {
		for _, vel := range [][]float64{nil, make([]float64, m.Dim)} {
			pde := ScalarPDE{Diffusion: 1, Velocity: vel}
			if vel != nil {
				vel[0] = 3
				vel[m.Dim-1] = -2
				pde.SUPG = true
			}
			a, _ := AssembleScalar(m, pde)
			ones := make([]float64, a.Rows)
			for i := range ones {
				ones[i] = 1
			}
			r := a.MulVec(ones)
			if got := sparse.NormInf(r); got > 1e-10 {
				t.Errorf("%v vel=%v: ‖A·1‖∞ = %v, want 0", m, vel, got)
			}
		}
	}
}

func TestStiffnessSymmetric(t *testing.T) {
	for _, m := range []*grid.Mesh{grid.UnitSquareTri(5), grid.UnitCubeTet(3), grid.QuarterRing(4, 5)} {
		a, _ := AssembleScalar(m, ScalarPDE{Diffusion: 2.5})
		if !isSymmetric(a, 1e-12) {
			t.Errorf("%v: diffusion matrix not symmetric", m)
		}
	}
}

func TestConvectionUnsymmetric(t *testing.T) {
	m := grid.UnitSquareTri(5)
	a, _ := AssembleScalar(m, ScalarPDE{Diffusion: 1, Velocity: []float64{10, 0}})
	if isSymmetric(a, 1e-12) {
		t.Fatal("convection matrix unexpectedly symmetric")
	}
}

// patchTest verifies that an exact linear solution is reproduced to
// rounding when imposed on the whole boundary: P1 elements are exact for
// linear fields, so any discretization error indicates an assembly bug.
func patchTest(t *testing.T, m *grid.Mesh, pde ScalarPDE, exact func(x []float64) float64) {
	t.Helper()
	a, b := AssembleScalar(m, pde)
	onB := m.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < m.NumNodes(); n++ {
		if onB[n] {
			bc[n] = exact(m.Coord(n))
		}
	}
	ApplyDirichlet(a, b, bc)
	x := solveDense(t, a, b)
	for n := 0; n < m.NumNodes(); n++ {
		want := exact(m.Coord(n))
		if math.Abs(x[n]-want) > 1e-9 {
			t.Fatalf("%v: patch test failed at node %d: %v, want %v", m, n, x[n], want)
		}
	}
}

func TestPatchLinear2D(t *testing.T) {
	patchTest(t, grid.UnitSquareTri(6), ScalarPDE{Diffusion: 1},
		func(x []float64) float64 { return 2*x[0] + 3*x[1] - 1 })
}

func TestPatchLinear2DUnstructured(t *testing.T) {
	patchTest(t, grid.PlateWithHole(14), ScalarPDE{Diffusion: 3},
		func(x []float64) float64 { return -x[0] + 0.5*x[1] + 2 })
}

func TestPatchLinear3D(t *testing.T) {
	patchTest(t, grid.UnitCubeTet(3), ScalarPDE{Diffusion: 1},
		func(x []float64) float64 { return x[0] - 2*x[1] + 4*x[2] })
}

func TestPatchLinearConvection(t *testing.T) {
	// For u linear and v constant, −kΔu + v·∇u = v·∇u is constant: use it
	// as the source and the patch test still must hold (SUPG included:
	// the stabilization term is consistent).
	u := func(x []float64) float64 { return 3*x[0] - x[1] }
	v := []float64{2, 5}
	patchTest(t, grid.UnitSquareTri(6),
		ScalarPDE{Diffusion: 1, Velocity: v, SUPG: true,
			Source: func(x []float64) float64 { return v[0]*3 + v[1]*(-1) }},
		u)
}

func TestPoissonManufacturedConvergence(t *testing.T) {
	// u = sin(πx)sin(πy), f = 2π²·u. The max-norm error must shrink by
	// ≈4× per refinement (O(h²)).
	exact := func(x []float64) float64 { return math.Sin(math.Pi*x[0]) * math.Sin(math.Pi*x[1]) }
	src := func(x []float64) float64 { return 2 * math.Pi * math.Pi * exact(x) }
	var errs []float64
	for _, m := range []int{5, 9, 17} {
		g := grid.UnitSquareTri(m)
		a, b := AssembleScalar(g, ScalarPDE{Diffusion: 1, Source: src})
		onB := g.BoundaryNodes()
		bc := map[int]float64{}
		for n := 0; n < g.NumNodes(); n++ {
			if onB[n] {
				bc[n] = 0
			}
		}
		ApplyDirichlet(a, b, bc)
		x := solveDense(t, a, b)
		var maxErr float64
		for n := 0; n < g.NumNodes(); n++ {
			if e := math.Abs(x[n] - exact(g.Coord(n))); e > maxErr {
				maxErr = e
			}
		}
		errs = append(errs, maxErr)
	}
	if errs[0] < errs[1] || errs[1] < errs[2] {
		t.Fatalf("errors not decreasing: %v", errs)
	}
	if ratio := errs[1] / errs[2]; ratio < 3 || ratio > 5 {
		t.Fatalf("convergence ratio %v, want ≈4 (errors %v)", ratio, errs)
	}
}

func TestMassMatrixProperties(t *testing.T) {
	for _, m := range []*grid.Mesh{grid.UnitSquareTri(6), grid.UnitCubeTet(3)} {
		mass := AssembleMass(m)
		if !isSymmetric(mass, 1e-14) {
			t.Errorf("%v: mass not symmetric", m)
		}
		// Σ_ij M_ij = |Ω|.
		ones := make([]float64, mass.Rows)
		for i := range ones {
			ones[i] = 1
		}
		total := sparse.Dot(ones, mass.MulVec(ones))
		if math.Abs(total-1) > 1e-12 {
			t.Errorf("%v: ΣM = %v, want 1", m, total)
		}
		// Row sums equal the lumped weights.
		lump := LumpedMass(m)
		rs := mass.MulVec(ones)
		for i := range rs {
			if math.Abs(rs[i]-lump[i]) > 1e-13 {
				t.Errorf("%v: row sum %d = %v, lumped %v", m, i, rs[i], lump[i])
				break
			}
		}
		// Lumped weights are positive.
		for i, w := range lump {
			if w <= 0 {
				t.Errorf("%v: lumped weight %d = %v", m, i, w)
				break
			}
		}
	}
}

func TestSUPGSuppressesOscillations(t *testing.T) {
	// Convection-dominated problem: v = (1000, 0)·cos/sin(π/4), u = 1 on
	// part of the inflow, 0 elsewhere on Dirichlet boundary. The stable
	// discrete solution must stay within the BC range up to a small
	// tolerance; plain Galerkin oscillates wildly at this Péclet number.
	g := grid.UnitSquareTri(17)
	v := 1000.0
	vel := []float64{v * math.Cos(math.Pi/4), v * math.Sin(math.Pi/4)}
	overshoot := map[bool]float64{}
	for _, supg := range []bool{false, true} {
		a, b := AssembleScalar(g, ScalarPDE{Diffusion: 1, Velocity: vel, SUPG: supg})
		onB := g.BoundaryNodes()
		bc := map[int]float64{}
		for n := 0; n < g.NumNodes(); n++ {
			if !onB[n] {
				continue
			}
			c := g.Coord(n)
			switch {
			case c[0] == 0 && c[1] > 0.25:
				bc[n] = 1
			case c[0] == 0 || c[1] == 0:
				bc[n] = 0
			}
			// Right and top sides: natural (outflow) — no constraint.
		}
		ApplyDirichlet(a, b, bc)
		x := solveDense(t, a, b)
		over := 0.0
		for _, u := range x {
			if u > 1 {
				over = math.Max(over, u-1)
			}
			if u < 0 {
				over = math.Max(over, -u)
			}
		}
		overshoot[supg] = over
	}
	if overshoot[true] > 0.15 {
		t.Errorf("SUPG overshoot %v, want small", overshoot[true])
	}
	if overshoot[true] > overshoot[false]+1e-12 {
		t.Errorf("SUPG overshoot %v exceeds plain Galerkin %v", overshoot[true], overshoot[false])
	}
}

func TestUpwindFn(t *testing.T) {
	if got := upwindFn(1e-9); math.Abs(got-1e-9/3) > 1e-18 {
		t.Errorf("upwindFn(ε) = %v, want ε/3", got)
	}
	if got := upwindFn(1e6); math.Abs(got-1) > 1e-5 {
		t.Errorf("upwindFn(large) = %v, want ≈1", got)
	}
	prev := 0.0
	for pe := 0.1; pe < 100; pe *= 1.7 {
		v := upwindFn(pe)
		if v <= prev || v >= 1 {
			t.Fatalf("upwindFn not monotone in (0,1): f(%v)=%v after %v", pe, v, prev)
		}
		prev = v
	}
}

func TestElasticityTranslationNullspace(t *testing.T) {
	g := grid.QuarterRing(5, 6)
	a, _ := AssembleElasticity(g, 1, 1.5, nil)
	if !isSymmetric(a, 1e-12) {
		t.Fatal("elasticity matrix not symmetric")
	}
	n := a.Rows
	for alpha := 0; alpha < 2; alpha++ {
		tr := make([]float64, n)
		for i := alpha; i < n; i += 2 {
			tr[i] = 1
		}
		if got := sparse.NormInf(a.MulVec(tr)); got > 1e-10 {
			t.Errorf("translation %d not in nullspace: %v", alpha, got)
		}
	}
}

func TestElasticityPatchLinear(t *testing.T) {
	// Linear displacement field with f = 0 must be reproduced exactly
	// under full Dirichlet BC.
	g := grid.QuarterRing(4, 5)
	exact := func(x []float64) (float64, float64) {
		return 0.1*x[0] - 0.2*x[1] + 0.3, 0.05*x[0] + 0.15*x[1] - 0.1
	}
	a, b := AssembleElasticity(g, 1, 2, nil)
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			u1, u2 := exact(g.Coord(n))
			bc[2*n] = u1
			bc[2*n+1] = u2
		}
	}
	ApplyDirichlet(a, b, bc)
	x := solveDense(t, a, b)
	for n := 0; n < g.NumNodes(); n++ {
		u1, u2 := exact(g.Coord(n))
		if math.Abs(x[2*n]-u1) > 1e-9 || math.Abs(x[2*n+1]-u2) > 1e-9 {
			t.Fatalf("patch failed at node %d: (%v,%v), want (%v,%v)", n, x[2*n], x[2*n+1], u1, u2)
		}
	}
}

func TestElasticityLoadVector(t *testing.T) {
	g := grid.UnitSquareTri(4)
	_, b := AssembleElasticity(g, 1, 1, func(x []float64) (float64, float64) { return 2, -3 })
	var sx, sy float64
	for n := 0; n < g.NumNodes(); n++ {
		sx += b[2*n]
		sy += b[2*n+1]
	}
	// Σ_i ∫f·φ_i = ∫f over the unit square.
	if math.Abs(sx-2) > 1e-12 || math.Abs(sy+3) > 1e-12 {
		t.Fatalf("load sums (%v, %v), want (2, -3)", sx, sy)
	}
}

func TestApplyDirichletKeepsSymmetry(t *testing.T) {
	g := grid.UnitSquareTri(5)
	a, b := AssembleScalar(g, ScalarPDE{Diffusion: 1})
	bc := map[int]float64{0: 1, 3: -2, 17: 0.5}
	ApplyDirichlet(a, b, bc)
	if !isSymmetric(a, 1e-14) {
		t.Fatal("ApplyDirichlet broke symmetry")
	}
	for dof, v := range bc {
		if b[dof] != v {
			t.Fatalf("b[%d] = %v, want %v", dof, b[dof], v)
		}
		cols, vals := a.Row(dof)
		for k, j := range cols {
			want := 0.0
			if j == dof {
				want = 1
			}
			if vals[k] != want {
				t.Fatalf("row %d not identity at col %d", dof, j)
			}
		}
	}
}

func TestApplyDirichletEmptyNoop(t *testing.T) {
	g := grid.UnitSquareTri(4)
	a, b := AssembleScalar(g, ScalarPDE{Diffusion: 1})
	before := a.Clone()
	ApplyDirichlet(a, b, nil)
	if !a.Equal(before) {
		t.Fatal("empty BC modified matrix")
	}
}

func TestDirichletResidual(t *testing.T) {
	x := []float64{1, 2, 3}
	bc := map[int]float64{0: 1, 2: 3.5}
	if got := DirichletResidual(x, bc); got != 0.5 {
		t.Fatalf("DirichletResidual = %v, want 0.5", got)
	}
	if got := DirichletResidual(x, nil); got != 0 {
		t.Fatalf("DirichletResidual(nil) = %v", got)
	}
}

func TestHeatSystemSPDandBounded(t *testing.T) {
	// A = M + Δt·K must stay symmetric and strictly diagonally "massive":
	// x'Ax > 0 for random x (probe a few vectors).
	g := grid.UnitCubeTet(3)
	k, _ := AssembleScalar(g, ScalarPDE{Diffusion: 1})
	mass := AssembleMass(g)
	dt := 0.05
	n := k.Rows
	acoo := sparse.NewCOO(n, n, k.NNZ()+mass.NNZ())
	for i := 0; i < n; i++ {
		cols, vals := mass.Row(i)
		for kk, j := range cols {
			acoo.Add(i, j, vals[kk])
		}
		cols, vals = k.Row(i)
		for kk, j := range cols {
			acoo.Add(i, j, dt*vals[kk])
		}
	}
	a := acoo.ToCSR()
	if !isSymmetric(a, 1e-13) {
		t.Fatal("heat matrix not symmetric")
	}
	for trial := 0; trial < 5; trial++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(float64(3*trial+i) * 1.7)
		}
		if q := sparse.Dot(x, a.MulVec(x)); q <= 0 {
			t.Fatalf("heat matrix not positive definite: x'Ax = %v", q)
		}
	}
}
