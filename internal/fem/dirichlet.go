package fem

import "parapre/internal/sparse"

// ApplyDirichlet imposes u[dof] = value[dof] for every entry of bc on the
// assembled system (A, b), symmetrically: known values are moved to the
// right-hand side, the constrained rows and columns are zeroed, and the
// diagonal is set to 1 so the constrained unknowns solve trivially to
// their boundary values. A keeps its sparsity pattern (eliminated entries
// become explicit zeros), which the ILU factorizations downstream rely on
// for stable, uniform patterns.
//
// The matrix is modified in place; the returned slice is b (also modified
// in place).
func ApplyDirichlet(a *sparse.CSR, b []float64, bc map[int]float64) []float64 {
	if len(bc) == 0 {
		return b
	}
	isBC := make([]bool, a.Rows)
	val := make([]float64, a.Rows)
	//lint:ignore determinism scatter to unique map keys: each val[dof] written once, order-independent
	for dof, v := range bc {
		isBC[dof] = true
		val[dof] = v
	}
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		if isBC[i] {
			// Constrained row: identity.
			for k, j := range cols {
				if j == i {
					vals[k] = 1
				} else {
					vals[k] = 0
				}
			}
			b[i] = val[i]
			continue
		}
		// Free row: move constrained columns to the RHS.
		for k, j := range cols {
			if isBC[j] {
				b[i] -= vals[k] * val[j]
				vals[k] = 0
			}
		}
	}
	return b
}

// DirichletResidual measures how far x is from satisfying the constraints:
// max |x[dof] − value|. Useful as a test invariant after a solve.
func DirichletResidual(x []float64, bc map[int]float64) float64 {
	var m float64
	//lint:ignore determinism max over disjoint entries commutes exactly, iteration order cannot change it
	for dof, v := range bc {
		d := x[dof] - v
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
