// Quickstart: solve the paper's Test Case 1 (2D Poisson, 65×65 grid) on
// eight simulated processors with the Schur 1 preconditioner, verify the
// answer against a sequential reference, and print the paper's
// measurements.
package main

import (
	"fmt"
	"log"

	"parapre"
)

func main() {
	prob := parapre.BuildCase("tc1-poisson2d", 65)

	cfg := parapre.DefaultConfig(8, parapre.Schur1)
	cfg.KeepX = true

	res, err := parapre.Solve(prob, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("problem: %s, %d unknowns on %d processors (%s model)\n",
		prob.Name, prob.A.Rows, cfg.P, cfg.Machine.Name)
	fmt.Printf("FGMRES(20) + Schur 1: %d iterations, converged=%v\n",
		res.Iterations, res.Converged)
	fmt.Printf("modeled wall-clock: setup %.4fs, solve %.4fs\n",
		res.SetupTime, res.SolveTime)

	diff, err := parapre.Verify(prob, res.X)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max difference vs sequential reference solve: %.3e\n", diff)
}
