package verify

import "testing"

// TestQuickSuite runs the full oracle registry in quick (CI smoke) mode.
// Any violation is a real numerical bug somewhere below this package.
func TestQuickSuite(t *testing.T) {
	cfg := Config{Seed: 1, Quick: true, Logf: t.Logf}
	rep := Run(cfg, "")
	if len(rep.Ran) != len(Checks()) {
		t.Fatalf("ran %d of %d checks", len(rep.Ran), len(Checks()))
	}
	for _, v := range rep.Violations {
		t.Errorf("%s", v)
	}
}

// TestMinimizeShrinks pins the reproducer minimizer: a failure predicate
// true for all n ≥ 3 must be walked down to exactly n = 3, and the seed
// sweep must find the smallest failing seed.
func TestMinimizeShrinks(t *testing.T) {
	n, seed := minimize(func(n int, s int64) bool { return n >= 3 }, 48, 9, 1)
	if n != 3 {
		t.Errorf("minimized n = %d, want 3", n)
	}
	if seed != 0 {
		t.Errorf("minimized seed = %d, want 0 (any seed fails at n=3)", seed)
	}

	n, seed = minimize(func(n int, s int64) bool { return n >= 3 && s == 9 }, 48, 9, 1)
	if n != 3 || seed != 9 {
		t.Errorf("minimized (n, seed) = (%d, %d), want (3, 9)", n, seed)
	}
}

// TestReportSummary checks the violation formatting used by paracheck.
func TestReportSummary(t *testing.T) {
	rep := &Report{Ran: []string{"a", "b"}}
	if rep.Failed() {
		t.Error("empty report reports failure")
	}
	rep.Violations = append(rep.Violations, Violation{Check: "a", Detail: "x != y", Repro: "n=3 seed=0"})
	if !rep.Failed() {
		t.Error("report with violations reports success")
	}
	s := rep.Summary()
	want := "2 checks run, 1 violations\n  VIOLATION a: x != y [repro: n=3 seed=0]\n"
	if s != want {
		t.Errorf("summary = %q, want %q", s, want)
	}
}
