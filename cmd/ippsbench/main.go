// Command ippsbench regenerates the tables of Cai & Sosonkina,
// "A Numerical Study of Some Parallel Algebraic Preconditioners"
// (IPPS 2003). Each experiment id corresponds to one table of the paper's
// §5; see DESIGN.md for the index.
//
// Usage:
//
//	ippsbench -list
//	ippsbench -exp tc1-cluster
//	ippsbench -exp tc1-cluster -size 257 -procs 2,4,8,16,32
//	ippsbench -all -size 65
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"parapre/internal/bench"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		exp   = flag.String("exp", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		size  = flag.Int("size", 0, "override the grid resolution parameter (0 = experiment default)")
		procs = flag.String("procs", "", "override the processor counts, comma separated (e.g. 2,4,8)")
		md    = flag.Bool("markdown", false, "emit GitHub-flavored Markdown tables")
	)
	flag.Parse()

	if *list {
		fmt.Println("id            table")
		for _, e := range bench.Experiments() {
			fmt.Printf("%-13s %s\n", e.ID, e.Title)
		}
		return
	}

	var toRun []bench.Experiment
	switch {
	case *all:
		toRun = bench.Experiments()
	case *exp != "":
		e, err := bench.ByID(*exp)
		if err != nil {
			fatal(err)
		}
		toRun = []bench.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "ippsbench: specify -exp <id>, -all, or -list")
		os.Exit(2)
	}

	if *procs != "" {
		ps, err := parseProcs(*procs)
		if err != nil {
			fatal(err)
		}
		for i := range toRun {
			toRun[i].Ps = ps
		}
	}

	for _, e := range toRun {
		start := time.Now()
		tables, err := e.Run(*size)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			if *md {
				t.WriteMarkdown(os.Stdout)
			} else {
				t.Write(os.Stdout)
			}
		}
		fmt.Printf("[%s completed in %.1fs real time]\n\n", e.ID, time.Since(start).Seconds())
	}
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("ippsbench: bad processor count %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ippsbench:", err)
	os.Exit(1)
}
