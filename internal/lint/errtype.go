package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// errtype: typed errors at package boundaries. The factorization and
// solver packages publish documented error types (ilu.ZeroPivotError,
// krylov.BreakdownError, the dist fault taxonomy) precisely so callers
// can match on them; an ad-hoc errors.New or fmt.Errorf that escapes the
// package boundary silently breaks that contract — callers are reduced
// to string matching.
//
// For each audited package, the analyzer computes the functions
// reachable from the package's exported API (exported functions and
// methods, via the call graph restricted to the package) and flags
// return statements in them that send a fresh untyped error across the
// boundary:
//
//	return errors.New("…")
//	return fmt.Errorf("…")        // without %w: wraps nothing
//	err := errors.New("…"); … ; return err
//
// Allowed: package-level sentinels (errors.New at package scope is the
// sentinel idiom), typed error constructors, fmt.Errorf with %w (it
// wraps an existing — presumed typed — error), and errors passed through
// from callees.

// errTypePkgs are the packages whose boundaries the analyzer audits.
var errTypePkgs = map[string]bool{
	"ilu":       true,
	"krylov":    true,
	"dist":      true,
	"socket":    true,
	"ckpt":      true,
	"partition": true,
}

var ErrType = &ProgramAnalyzer{
	Name: "errtype",
	Doc:  "errors crossing ilu/krylov/dist package boundaries must be documented typed errors or wrap them",
	Run:  runErrType,
}

func runErrType(prog *Program) []Diagnostic {
	g := prog.CallGraph()
	nodes := sortedNodes(g)

	// Reachability from each audited package's exported API, restricted
	// to within-package edges: an unexported helper's fresh error only
	// matters if an exported path can surface it.
	reachable := map[*CGNode]bool{}
	var walk func(n *CGNode)
	walk = func(n *CGNode) {
		if reachable[n] {
			return
		}
		reachable[n] = true
		for _, e := range n.Out {
			if e.Callee != nil && e.Callee.Pkg == n.Pkg {
				walk(e.Callee)
			}
		}
	}
	for _, n := range nodes {
		if !errTypePkgs[lastInternalPkg(n.Pkg.Path)] {
			continue
		}
		if n.Fn.Exported() || exportedRecvMethod(n.Fn) {
			walk(n)
		}
	}

	var out []Diagnostic
	for _, n := range nodes {
		if !reachable[n] || !errTypePkgs[lastInternalPkg(n.Pkg.Path)] {
			continue
		}
		out = append(out, errTypeFunc(n)...)
	}
	sortDiags(out)
	return out
}

// exportedRecvMethod reports whether fn is a method (of any name) on an
// exported type — part of the package API even when the method itself is
// promoted through an exported interface.
func exportedRecvMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Exported() && fn.Exported()
	}
	return false
}

// errTypeFunc flags fresh untyped errors returned by one function.
func errTypeFunc(node *CGNode) []Diagnostic {
	p := node.Pkg
	pkgName := lastInternalPkg(p.Path)

	// First pass: local variables assigned a fresh untyped error.
	freshVars := map[types.Object]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Info.ObjectOf(id)
			if obj == nil || obj.Parent() == p.Types.Scope() {
				continue // package-level sentinel assignment: not local
			}
			if freshUntypedError(p, as.Rhs[i]) {
				freshVars[obj] = true
			} else if _, isCall := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); isCall {
				// Reassigned from a callee: no longer fresh-untyped.
				delete(freshVars, obj)
			}
		}
		return true
	})

	var out []Diagnostic
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, e := range ret.Results {
			tv, ok := p.Info.Types[e]
			if !ok || tv.Type == nil || !isErrorType(tv.Type) {
				continue
			}
			fresh := freshUntypedError(p, e)
			if !fresh {
				if id, ok := ast.Unparen(e).(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil && freshVars[obj] {
						fresh = true
					}
				}
			}
			if fresh {
				out = append(out, diag(p, e.Pos(), "errtype",
					"ad-hoc untyped error crosses the %q package boundary; return a documented typed error (see the package's errors.go) or wrap a typed cause with %%w", pkgName))
			}
		}
		return true
	})
	return out
}

// freshUntypedError reports whether e constructs a fresh untyped error:
// errors.New(…), or fmt.Errorf(…) whose format has no %w verb.
func freshUntypedError(p *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch {
	case fn.Pkg().Path() == "errors" && fn.Name() == "New":
		return true
	case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
		if len(call.Args) == 0 {
			return true
		}
		if tv, ok := p.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return !strings.Contains(constant.StringVal(tv.Value), "%w")
		}
		return true // non-constant format: assume it wraps nothing
	}
	return false
}

// isErrorType reports whether t is the error interface.
func isErrorType(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return iface.NumMethods() == 1 && iface.Method(0).Name() == "Error"
}
