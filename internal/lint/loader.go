package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package, the unit the
// analyzers operate on. Test files (*_test.go) are excluded: every
// analyzer in this suite states its rules for non-test code, and test
// files routinely (and legitimately) compare floats exactly, drop errors,
// and iterate maps.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages using only the standard library:
// module-internal import paths are mapped onto directories under the
// module root and loaded recursively; everything else (the standard
// library) is type-checked from source by go/importer's source importer.
// No `go list` subprocess, no network, no module cache.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	// Tags are the build tags considered set during file selection.
	// The default is the empty default build — in particular the
	// `paranoid` files are excluded, matching what `go build ./...`
	// compiles.
	Tags map[string]bool

	pkgs map[string]*Package
	std  types.ImporterFrom
}

// NewLoader locates the enclosing module from startDir (walking up to the
// first go.mod) and returns a loader rooted there.
func NewLoader(startDir string) (*Loader, error) {
	dir, err := filepath.Abs(startDir)
	if err != nil {
		return nil, err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			path := modulePath(string(data))
			if path == "" {
				return nil, fmt.Errorf("lint: no module line in %s/go.mod", dir)
			}
			fset := token.NewFileSet()
			return &Loader{
				Fset:       fset,
				ModuleRoot: dir,
				ModulePath: path,
				Tags:       map[string]bool{},
				pkgs:       map[string]*Package{},
				std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
			}, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, fmt.Errorf("lint: no go.mod found above %s", startDir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// through this loader, all others through the stdlib source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(path, l.ModulePath)
		p, err := l.LoadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, 0)
}

// LoadDir parses and type-checks the package in dir (non-test files that
// survive build-constraint selection), memoized by import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}

	names, err := l.selectFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	cfg := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := cfg.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}

	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Loaded returns every module-internal package this loader has loaded so
// far — lint targets plus their module-internal dependencies, which is
// exactly the package universe the interprocedural analyzers need.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// importPath maps a directory under the module root to its import path.
func (l *Loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// selectFiles lists the non-test .go files in dir that the current tag
// set builds, in sorted order.
func (l *Loader) selectFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		ok, err := l.buildableFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// buildableFile evaluates the file's //go:build constraint (if any)
// against the loader's tag set.
func (l *Loader) buildableFile(path string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			break // constraints must precede the package clause
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			return false, fmt.Errorf("lint: %s: %v", path, err)
		}
		return expr.Eval(l.tagSet), nil
	}
	return true, nil
}

// tagSet reports whether a build tag is considered satisfied: explicit
// entries in Tags win, the host OS/arch and all go1.N release tags are
// always on, everything else (including `paranoid`) is off.
func (l *Loader) tagSet(tag string) bool {
	if v, ok := l.Tags[tag]; ok {
		return v
	}
	if tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" {
		return true
	}
	if strings.HasPrefix(tag, "go1.") {
		return true
	}
	return false
}

// ExpandPatterns resolves command-line package patterns ("./...", plain
// directories) to the list of package directories to lint. Directories
// named testdata or vendor and hidden directories are skipped, matching
// the go tool's convention.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := pat, false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base, recursive = rest, true
		}
		if base == "" || base == "." {
			base = l.ModuleRoot
		}
		abs, err := filepath.Abs(base)
		if err != nil {
			return nil, err
		}
		if !recursive {
			add(abs)
			continue
		}
		err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != abs && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
				add(filepath.Dir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
