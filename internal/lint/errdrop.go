package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags call statements that silently discard an error result.
// An error assigned to the blank identifier (`_ = f()`) counts as an
// explicit, reviewable decision and is not flagged; a bare call
// statement is invisible at the call site and is. Deferred calls
// (`defer f.Close()`) follow the standard-library cleanup idiom and are
// accepted.
//
// Excluded by convention: the fmt print family (diagnostic output; the
// returned error is about the writer, which for the os.Std* streams has
// no useful handling) and the never-failing writers strings.Builder and
// bytes.Buffer.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "call statements discarding an error return in non-test code",
	Run:  runErrDrop,
}

// errDropExcludedFuncs are exact *types.Func full names whose dropped
// error is accepted.
var errDropExcludedFuncs = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
}

// errDropExcludedRecvs are receiver prefixes whose methods never return a
// meaningful error.
var errDropExcludedRecvs = []string{
	"(*strings.Builder).",
	"(*bytes.Buffer).",
}

func runErrDrop(p *Package) []Diagnostic {
	errType := types.Universe.Lookup("error").Type()
	returnsError := func(call *ast.CallExpr) bool {
		switch t := p.Info.TypeOf(call).(type) {
		case *types.Tuple:
			for i := 0; i < t.Len(); i++ {
				if types.Identical(t.At(i).Type(), errType) {
					return true
				}
			}
		case types.Type:
			return types.Identical(t, errType)
		}
		return false
	}

	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok || !returnsError(call) {
				return true
			}
			name := "call"
			if fn := calleeFunc(p, call); fn != nil {
				full := fn.FullName()
				if errDropExcludedFuncs[full] {
					return true
				}
				for _, prefix := range errDropExcludedRecvs {
					if strings.HasPrefix(full, prefix) {
						return true
					}
				}
				name = full
			}
			out = append(out, diag(p, call.Pos(), "errdrop",
				"%s returns an error that is discarded: handle it or assign it to _ deliberately", name))
			return true
		})
	}
	return out
}
