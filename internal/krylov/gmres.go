// Package krylov implements the Krylov subspace solvers of the paper:
// restarted GMRES(m), its flexible variant FGMRES(m) (required because the
// Schur-complement preconditioners are themselves inner iterations, i.e.
// the preconditioner changes from step to step), and preconditioned CG
// (used inside the additive-Schwarz subdomain solver of §5.2).
//
// One implementation serves both the sequential subdomain solvers and the
// distributed outer solver: the matrix, the preconditioner and the inner
// product are injected. In the distributed setting the injected matvec
// performs the neighbor exchange and the injected dot performs the
// all-reduce, so the Hessenberg recurrence below is replicated
// identically on every rank — exactly how distributed GMRES works on a
// real machine.
package krylov

import (
	"math"

	"parapre/internal/obs"
	"parapre/internal/paranoid"
	"parapre/internal/sparse"
)

// Op applies an operator: y = A·x. y and x never alias.
type Op func(y, x []float64)

// Prec applies a preconditioner: z = M⁻¹·r. z and r never alias. A nil
// Prec means identity (unpreconditioned).
type Prec func(z, r []float64)

// Dot is the (possibly global) inner product.
type Dot func(x, y []float64) float64

// Options configures a solve.
type Options struct {
	Restart  int     // m in GMRES(m); the paper uses 20
	MaxIters int     // cap on total iterations
	Tol      float64 // relative residual reduction; the paper uses 1e-6
	Flexible bool    // FGMRES: store preconditioned basis vectors

	// Compute, when non-nil, is charged with the flop counts of the
	// solver's own vector operations (the injected Op/Prec/Dot charge for
	// themselves). The distributed driver passes dist.Comm.Compute.
	Compute func(flops float64)

	// RecordHistory makes the solver store the (estimated) residual norm
	// after every iteration in Result.History — the paper's Diffpack
	// "convergence monitors".
	RecordHistory bool

	// Stop, when non-nil, is polled once per iteration at the iteration
	// boundary (the same replicated point the checkpoint hook fires at);
	// returning true ends the solve cooperatively with a *CanceledError
	// wrapping ErrCanceled. In a distributed solve the decision must be
	// identical on every rank at the same iteration or the ranks desync
	// inside the next collective — wire Stop through a collective vote
	// (see dist.Comm.VoteStop), never through a bare per-rank flag. Nil
	// (the default) costs a single comparison per iteration and leaves
	// the solve bit-identical to earlier releases.
	Stop func() bool

	// Progress, when non-nil, is invoked after every iteration with the
	// iteration count and the current (estimated) residual norm — the
	// live-streaming counterpart of RecordHistory. The values are exactly
	// the ones History records. The callback runs on the rank goroutine;
	// it must not block for long and must not call back into the solver.
	Progress func(iter int, resid float64)

	// Span, when non-nil, opens an observability span of the given kind
	// (an obs.Kind* constant) and returns its closer. The distributed
	// driver wires this to the rank's dist.Comm span hooks; nil means
	// tracing is off and costs a single comparison per use.
	Span func(kind, name string) func()

	// Work, when non-nil, supplies the pooled solver workspace, making
	// repeated solves allocation-free in steady state (see Workspace for
	// the sharing contract). nil keeps the historical allocate-per-call
	// behavior.
	Work *Workspace

	// Checkpoint, when non-nil together with CheckpointEvery > 0, is
	// called every CheckpointEvery iterations at an iteration boundary
	// with a deep snapshot of the recurrence. In a distributed solve the
	// iteration count is replicated across ranks, so every rank fires the
	// hook at the same logical point — the collection of per-rank
	// snapshots at one iteration is a globally consistent checkpoint. The
	// hook must not mutate the snapshot's slices it shares with no one
	// (they are deep copies) and should hand them to a durable sink (see
	// the ckpt package).
	Checkpoint      func(*State)
	CheckpointEvery int

	// Resume, when non-nil, restores the snapshot and continues the
	// solve mid-recurrence instead of starting from the supplied x. The
	// snapshot must match the solver (method, n, restart length);
	// Result.Err carries a *StateMismatchError otherwise. A resumed run
	// replays the exact arithmetic of the uninterrupted one, so residual
	// histories and iteration counts are bit-identical.
	Resume *State
}

// DefaultOptions mirrors the paper's solver configuration (§4.3):
// (F)GMRES(20) reducing the residual by 1e−6.
func DefaultOptions() Options {
	return Options{Restart: 20, MaxIters: 1000, Tol: 1e-6}
}

// Result reports the outcome of a solve.
type Result struct {
	Iterations int       // matrix-vector products performed
	Restarts   int       // restart cycles begun after the first (GMRES only)
	Converged  bool      // reached Tol before MaxIters
	Initial    float64   // initial residual norm
	Final      float64   // final (estimated) residual norm
	Breakdown  bool      // lucky/unlucky breakdown encountered
	History    []float64 // per-iteration residual norms (with RecordHistory; History[0] is the initial norm)

	// Err is non-nil when the solve ended on a breakdown that did not
	// converge: a NaN/Inf inner product or norm, an annihilated Givens
	// rotation, or (for CG) a non-positive curvature direction. It wraps
	// ErrBreakdown and records the iteration index — see BreakdownError.
	// A lucky breakdown (exact solution found early) leaves Err nil.
	Err error
}

func (o *Options) charge(flops float64) {
	if o.Compute != nil {
		o.Compute(flops)
	}
}

// span opens an observability span through the injected hook; with
// tracing off it returns a shared no-op closer without allocating.
func (o *Options) span(kind, name string) func() {
	if o.Span == nil {
		return noopSpanEnd
	}
	return o.Span(kind, name)
}

func noopSpanEnd() {}

// GMRES solves A·x = b with restarted, right-preconditioned GMRES(m)
// (or FGMRES(m) if opt.Flexible). x holds the initial guess on entry and
// the solution on exit.
//
//lint:allocfree steady state with a warmed Workspace; verified dynamically by TestGMRESZeroAllocSteadyState
func GMRES(n int, matvec Op, precond Prec, dot Dot, b, x []float64, opt Options) Result {
	if opt.Restart <= 0 {
		opt.Restart = 20
	}
	if opt.MaxIters <= 0 {
		opt.MaxIters = DefaultOptions().MaxIters
	}
	m := opt.Restart
	nf := float64(n)
	method := "GMRES"
	if opt.Flexible {
		method = "FGMRES"
	}

	// Krylov basis; Z additionally holds the preconditioned vectors for
	// the flexible variant. All temporaries come from the workspace; with
	// none supplied, a per-call one reproduces the old allocation pattern.
	ws := opt.Work
	if ws == nil {
		ws = NewWorkspace()
	}
	V := ws.basis(&ws.v, m+1, n)
	var Z [][]float64
	if opt.Flexible && precond != nil {
		Z = ws.basis(&ws.z, m, n)
	}
	H := ws.vec(&ws.h, (m+1)*m) // column-major Hessenberg: H[i+j*(m+1)]
	cs := ws.vec(&ws.cs, m)
	sn := ws.vec(&ws.sn, m)
	g := ws.vec(&ws.g, m+1)
	w := ws.vec(&ws.w, n)
	z := ws.vec(&ws.zVec, n)
	r := ws.vec(&ws.r, n)
	yBuf := ws.vec(&ws.y, m)

	res := Result{}

	totalIters := 0
	var ref float64

	resume := opt.Resume
	if resume != nil {
		if err := resume.check(method, n, m); err != nil {
			res.Err = err
			return res
		}
	}
	justResumed := false
	j0 := 0

	for {
		if resume != nil {
			// Mid-cycle restore: rebuild the recurrence exactly as the
			// interrupted run left it and re-enter the inner loop at J.
			// Only the defined prefixes were captured; everything beyond
			// them is rewritten before it is read (g is the exception and
			// is therefore zeroed first).
			st := resume
			resume = nil
			totalIters = st.Iter
			res.Restarts = st.Restarts
			res.Iterations = totalIters
			ref = st.Ref
			res.Initial = st.Initial
			copy(x, st.X)
			for i := range st.V {
				copy(V[i], st.V[i])
			}
			if Z != nil {
				for i := range st.Z {
					copy(Z[i], st.Z[i])
				}
			}
			copy(H, st.H)
			copy(cs, st.Cs)
			copy(sn, st.Sn)
			for i := range g {
				g[i] = 0
			}
			copy(g, st.G)
			if opt.RecordHistory {
				//lint:ignore allocfree checkpoint restore is opt-in recovery, excluded from the steady-state contract
				res.History = append(res.History[:0], st.History...)
			}
			j0 = st.J
			justResumed = true
		} else {
			if totalIters > 0 {
				res.Restarts++
			}
			// r = b − A·x.
			matvec(r, x)
			for i := range r {
				r[i] = b[i] - r[i]
			}
			opt.charge(nf)
			beta := dotNorm(dot, r)
			if !finite(beta) {
				res.Breakdown = true
				res.Err = breakdownErr(method, totalIters, "residual norm", beta)
				res.Final = beta
				res.Iterations = totalIters
				return res
			}
			if ref == 0 {
				ref = beta
				res.Initial = beta
				if opt.RecordHistory {
					//lint:ignore allocfree History recording is opt-in diagnostics, excluded from the steady-state contract
					res.History = append(res.History, beta)
				}
				if opt.Progress != nil {
					opt.Progress(totalIters, beta)
				}
				if beta == 0 {
					res.Converged = true
					res.Final = 0
					return res
				}
			}
			if beta <= opt.Tol*ref {
				res.Converged = true
				res.Final = beta
				return res
			}
			if totalIters >= opt.MaxIters {
				res.Final = beta
				return res
			}

			sparse.ScaleTo(V[0], 1/beta, r)
			opt.charge(nf)
			for i := range g {
				g[i] = 0
			}
			g[0] = beta
			j0 = 0
		}

		j := j0
		stopped := false
		for ; j < m && totalIters < opt.MaxIters; j++ {
			// Cooperative cancellation, polled at the iteration boundary —
			// the same replicated point the checkpoint hook fires at, so in
			// a distributed solve every rank leaves the loop at the same
			// iteration. The iterate is still updated from the columns
			// accumulated so far before returning.
			if opt.Stop != nil && opt.Stop() {
				stopped = true
				break
			}
			if opt.Checkpoint != nil && opt.CheckpointEvery > 0 && totalIters > 0 &&
				totalIters%opt.CheckpointEvery == 0 && !justResumed {
				opt.Checkpoint(captureGMRES(method, n, m, totalIters, res.Restarts, j,
					ref, &res, x, V, Z, H, cs, sn, g))
			}
			justResumed = false
			// w = A·M⁻¹·v_j (right preconditioning).
			vj := V[j]
			if precond != nil {
				if Z != nil {
					precond(Z[j], vj)
					paranoid.CheckFiniteVec("krylov: preconditioned basis vector", Z[j])
					matvec(w, Z[j])
				} else {
					precond(z, vj)
					paranoid.CheckFiniteVec("krylov: preconditioned basis vector", z)
					matvec(w, z)
				}
			} else {
				matvec(w, vj)
			}
			totalIters++

			// Modified Gram–Schmidt.
			endOrth := opt.span(obs.KindOrth, "")
			for i := 0; i <= j; i++ {
				h := dot(w, V[i])
				paranoid.CheckFinite("krylov: Gram-Schmidt coefficient", h)
				H[i+j*(m+1)] = h
				sparse.Axpy(-h, V[i], w)
				opt.charge(2 * nf)
			}
			hn := dotNorm(dot, w)
			endOrth()
			if !finite(hn) {
				// A NaN anywhere in the new basis vector (poisoned operator
				// or preconditioner) surfaces here; the current iterate is
				// the last restart's and the recurrence is unrecoverable.
				res.Breakdown = true
				res.Err = breakdownErr(method, totalIters, "Arnoldi basis norm", hn)
				res.Final = math.NaN()
				res.Iterations = totalIters
				return res
			}
			H[j+1+j*(m+1)] = hn
			if hn > 0 {
				sparse.ScaleTo(V[j+1], 1/hn, w)
				opt.charge(nf)
			}

			// Apply previous Givens rotations to the new column.
			for i := 0; i < j; i++ {
				hi, hi1 := H[i+j*(m+1)], H[i+1+j*(m+1)]
				H[i+j*(m+1)] = cs[i]*hi + sn[i]*hi1
				H[i+1+j*(m+1)] = -sn[i]*hi + cs[i]*hi1
			}
			// New rotation annihilating H[j+1, j].
			hj, hj1 := H[j+j*(m+1)], H[j+1+j*(m+1)]
			rho := math.Hypot(hj, hj1)
			if rho == 0 {
				// Breakdown: the Krylov space is exhausted. The new column
				// is identically zero after the previous rotations, so it
				// is excluded from the least-squares solve (its diagonal
				// would divide by zero) and the iterate is updated from the
				// columns accumulated so far.
				res.Breakdown = true
				res.Err = breakdownErr(method, totalIters, "Givens rotation magnitude", 0)
				break
			}
			cs[j], sn[j] = hj/rho, hj1/rho
			H[j+j*(m+1)] = rho
			H[j+1+j*(m+1)] = 0
			g[j+1] = -sn[j] * g[j]
			g[j] = cs[j] * g[j]
			if opt.RecordHistory {
				//lint:ignore allocfree History recording is opt-in diagnostics, excluded from the steady-state contract
				res.History = append(res.History, math.Abs(g[j+1]))
			}
			if opt.Progress != nil {
				opt.Progress(totalIters, math.Abs(g[j+1]))
			}

			if math.Abs(g[j+1]) <= opt.Tol*ref {
				j++
				break
			}
			if hn == 0 {
				res.Breakdown = true
				res.Err = breakdownErr(method, totalIters, "Arnoldi basis norm", 0)
				j++
				break
			}
		}

		// Solve the j×j triangular system H·y = g. yBuf is fully written
		// before it is read, so reuse across cycles is safe.
		y := yBuf[:j]
		for i := j - 1; i >= 0; i-- {
			s := g[i]
			for k := i + 1; k < j; k++ {
				s -= H[i+k*(m+1)] * y[k]
			}
			y[i] = s / H[i+i*(m+1)]
		}

		// x += M⁻¹·V·y (plain) or Z·y (flexible).
		if Z != nil {
			for k := 0; k < j; k++ {
				ax(x, y[k], Z[k])
			}
			opt.charge(2 * nf * float64(j))
		} else if precond != nil {
			for i := range w {
				w[i] = 0
			}
			for k := 0; k < j; k++ {
				ax(w, y[k], V[k])
			}
			opt.charge(2 * nf * float64(j))
			precond(z, w)
			sparse.Axpy(1, z, x)
			opt.charge(nf)
		} else {
			for k := 0; k < j; k++ {
				ax(x, y[k], V[k])
			}
			opt.charge(2 * nf * float64(j))
		}
		res.Iterations = totalIters

		if stopped {
			// Canceled at an iteration boundary: x now carries the update
			// from the j columns completed before the stop (j may be zero,
			// leaving x at the last restart's iterate). |g[j]| is the
			// residual estimate of that iterate.
			res.Final = math.Abs(g[j])
			res.Err = canceledErr(method, totalIters)
			return res
		}

		if res.Breakdown {
			// Recompute the true residual and return. A lucky breakdown —
			// the exact solution emerged before the space was exhausted —
			// converges here and is not an error.
			matvec(r, x)
			for i := range r {
				r[i] = b[i] - r[i]
			}
			res.Final = dotNorm(dot, r)
			res.Converged = res.Final <= opt.Tol*ref
			if res.Converged {
				res.Err = nil
			}
			return res
		}
	}
}

// ax is y += a·x, routed through the (possibly parallel) sparse kernel.
func ax(y []float64, a float64, x []float64) {
	sparse.Axpy(a, x, y)
}
