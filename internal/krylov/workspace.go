package krylov

import "math"

// Workspace pools every temporary a Krylov solve needs — the Krylov
// basis, the Hessenberg column store, Givens scratch, and the residual /
// direction vectors — so repeated solves allocate nothing in steady
// state. The hot consumers are the inner solves of the Schur 1
// preconditioner, which run a short GMRES per outer iteration: without
// pooling, every preconditioner application rebuilt the full basis.
//
// Pass a Workspace via Options.Work. Buffers grow to the largest (n, m)
// seen and are reused verbatim afterwards; solvers fully overwrite every
// value they read, so no clearing happens between solves. A Workspace
// must not be shared by concurrent solves — each solving goroutine owns
// its own (the resilient ladder and all preconditioners satisfy this by
// construction: one workspace per rank-local instance).
type Workspace struct {
	v, z         [][]float64
	h            []float64
	cs, sn, g, y []float64
	w, zVec, r   []float64
	p, ap        []float64 // CG directions
}

// NewWorkspace returns an empty workspace; buffers are sized on first
// use.
// The solver-side nil-Work fallback allocates one of these per solve by
// design; steady-state callers pass a reused Workspace.
//
//lint:ignore allocfree nil-Work fallback allocates once per solve by design
func NewWorkspace() *Workspace { return &Workspace{} }

// vec returns *buf resliced to length n, growing it if needed.
func (ws *Workspace) vec(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		//lint:ignore allocfree amortized growth: buffers grow on first use, then are reused across solves
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// basis returns *bufs resliced to count vectors of length n each.
func (ws *Workspace) basis(bufs *[][]float64, count, n int) [][]float64 {
	if cap(*bufs) < count {
		//lint:ignore allocfree amortized growth: basis vectors grow on first use, then are reused across solves
		nb := make([][]float64, count)
		copy(nb, *bufs)
		*bufs = nb
	}
	*bufs = (*bufs)[:count]
	for i := range *bufs {
		if cap((*bufs)[i]) < n {
			//lint:ignore allocfree amortized growth: basis vectors grow on first use, then are reused across solves
			(*bufs)[i] = make([]float64, n)
		}
		(*bufs)[i] = (*bufs)[i][:n]
	}
	return *bufs
}

// dotNorm is ‖v‖ through the injected inner product, clamping the tiny
// negative values a distributed reduction can produce. A plain function
// (not a per-call closure) so the pooled solvers stay allocation-free.
func dotNorm(dot Dot, v []float64) float64 {
	d := dot(v, v)
	if d < 0 {
		d = 0
	}
	return math.Sqrt(d)
}
