// Package gateway turns the repository's solver core into a long-running
// service: an HTTP/JSON front end (cmd/parapred) over a multi-tenant
// scheduler of concurrent core.Sessions. A client POSTs a problem spec —
// a named paper test case or an inline MatrixMarket system plus
// preconditioner/solver/machine configuration — receives a job ID, and
// streams the solve live over SSE: per-iteration residuals, recovery
// events, phase spans, and the final result. Jobs are cancelable
// mid-solve (the signal rides core's collective stop vote), queues apply
// per-tenant backpressure, and an optional checkpoint directory lets
// killed jobs resume on restart.
package gateway

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"parapre/internal/cases"
	"parapre/internal/core"
	"parapre/internal/dist"
	"parapre/internal/mmio"
	"parapre/internal/precond"
)

// Spec is the wire form of one solve request. Exactly one of Case or
// Matrix selects the system; everything else has serviceable defaults.
type Spec struct {
	// Case names a paper test case (tc1-poisson2d … tc7-jump); Size is
	// its resolution parameter (0 = the case's scaled-down default).
	Case string `json:"case,omitempty"`
	Size int    `json:"size,omitempty"`
	// Matrix is an inline MatrixMarket coordinate matrix; RHS an optional
	// MatrixMarket array vector (defaults to A·1 for a known solution).
	Matrix string `json:"matrix,omitempty"`
	RHS    string `json:"rhs,omitempty"`

	// Procs is the simulated processor count (default 4).
	Procs int `json:"procs,omitempty"`
	// Precond is the paper notation ("Block 1", "Block 2", "Block ARMS",
	// "Block 2P", "Block IC", "Schur 1", "Schur 2", "MSLR", "None";
	// default "Block 2").
	Precond string `json:"precond,omitempty"`
	// Machine selects the modeled machine: "LinuxCluster" (default),
	// "Origin3800", or "Origin3800Unloaded".
	Machine string `json:"machine,omitempty"`

	MaxIters  int     `json:"max_iters,omitempty"`
	Restart   int     `json:"restart,omitempty"`
	Tol       float64 `json:"tol,omitempty"`
	UseCG     bool    `json:"use_cg,omitempty"`
	Resilient bool    `json:"resilient,omitempty"`
	// Overlap upgrades Block 1/2 to their overlapping variants with this
	// many extra graph layers.
	Overlap int  `json:"overlap,omitempty"`
	RCM     bool `json:"rcm,omitempty"`
	// ReturnX gathers the solution and reports the true residual.
	ReturnX bool `json:"return_x,omitempty"`

	// CheckpointEvery > 0 snapshots the recurrence every so many
	// iterations into the server's checkpoint directory, making the job
	// resumable if the server is killed mid-solve.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// StreamSpans streams every completed obs span as an SSE event
	// (verbose); by default only resilient-attempt spans stream live and
	// the per-phase breakdown arrives with the result.
	StreamSpans bool `json:"stream_spans,omitempty"`
}

var machines = map[string]func() *dist.Machine{
	"":                   dist.LinuxCluster,
	"LinuxCluster":       dist.LinuxCluster,
	"Origin3800":         dist.Origin3800,
	"Origin3800Unloaded": dist.Origin3800Unloaded,
}

// Validate normalizes the spec and reports the first problem a client
// would want a 400 for.
func (s *Spec) Validate() error {
	if (s.Case == "") == (s.Matrix == "") {
		return fmt.Errorf("gateway: exactly one of case or matrix is required")
	}
	if s.Case != "" {
		if _, err := cases.ByName(s.Case); err != nil {
			names := make([]string, 0, 7)
			for _, c := range cases.All() {
				names = append(names, c.Name)
			}
			return fmt.Errorf("gateway: unknown case %q (have %s)", s.Case, strings.Join(names, ", "))
		}
	}
	if s.Procs < 0 {
		return fmt.Errorf("gateway: procs = %d", s.Procs)
	}
	if s.Procs == 0 {
		s.Procs = 4
	}
	if s.Precond == "" {
		s.Precond = string(precond.KindBlock2)
	}
	switch precond.Kind(s.Precond) {
	case precond.KindBlock1, precond.KindBlock2, precond.KindBlockARMS,
		precond.KindBlock2P, precond.KindBlockIC, precond.KindSchur1,
		precond.KindSchur2, precond.KindMSLR, precond.KindNone:
	default:
		return fmt.Errorf("gateway: unknown preconditioner %q", s.Precond)
	}
	if _, ok := machines[s.Machine]; !ok {
		return fmt.Errorf("gateway: unknown machine %q", s.Machine)
	}
	if s.Size < 0 || s.MaxIters < 0 || s.Restart < 0 || s.Tol < 0 ||
		s.Overlap < 0 || s.CheckpointEvery < 0 {
		return fmt.Errorf("gateway: negative spec parameter")
	}
	return nil
}

// BuildProblem constructs the core.Problem the spec describes. Call
// Validate first.
func (s *Spec) BuildProblem() (*core.Problem, error) {
	if s.Case != "" {
		c, err := cases.ByName(s.Case)
		if err != nil {
			return nil, err
		}
		size := s.Size
		if size == 0 {
			size = c.DefaultSize
		}
		return c.Build(size), nil
	}
	a, err := mmio.ReadMatrix(strings.NewReader(s.Matrix))
	if err != nil {
		return nil, fmt.Errorf("gateway: matrix: %w", err)
	}
	var b []float64
	if s.RHS != "" {
		b, err = mmio.ReadVector(strings.NewReader(s.RHS))
		if err != nil {
			return nil, fmt.Errorf("gateway: rhs: %w", err)
		}
		if len(b) != a.Rows {
			return nil, fmt.Errorf("gateway: rhs length %d, matrix has %d rows", len(b), a.Rows)
		}
	} else {
		// b = A·1: the solve has the known solution x = 1.
		ones := make([]float64, a.Rows)
		for i := range ones {
			ones[i] = 1
		}
		b = make([]float64, a.Rows)
		a.MulVecTo(b, ones)
	}
	return &core.Problem{Name: "upload", A: a, B: b}, nil
}

// BuildConfig constructs the session configuration the spec describes.
// Call Validate first.
func (s *Spec) BuildConfig() core.Config {
	cfg := core.DefaultConfig(s.Procs, precond.Kind(s.Precond))
	cfg.Machine = machines[s.Machine]()
	if s.MaxIters > 0 {
		cfg.Solver.MaxIters = s.MaxIters
	}
	if s.Restart > 0 {
		cfg.Solver.Restart = s.Restart
	}
	if s.Tol > 0 {
		cfg.Solver.Tol = s.Tol
	}
	cfg.Solver.RecordHistory = true
	cfg.UseCG = s.UseCG
	cfg.Resilient = s.Resilient
	cfg.OverlapLevels = s.Overlap
	cfg.RCM = s.RCM
	cfg.KeepX = s.ReturnX
	return cfg
}

// SessionKey hashes the spec fields that determine the session (matrix,
// distribution, preconditioner, solver shape) — jobs with equal keys
// share one cached core.Session and amortize its setup.
func (s *Spec) SessionKey() string {
	h := sha256.New()
	// json.Marshal of the normalized spec is canonical: struct fields
	// serialize in declaration order. The per-solve knobs (checkpointing,
	// streaming) are zeroed out so they don't split the cache.
	c := *s
	c.CheckpointEvery = 0
	c.StreamSpans = false
	b, _ := json.Marshal(&c)
	_, _ = h.Write(b)
	return hex.EncodeToString(h.Sum(nil))[:16]
}
