package ilu

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"parapre/internal/sparse"
)

// ILUTOptions controls the dual-threshold factorization. The paper's ILUT
// subdomain solvers correspond to moderate fill (LFil ≈ 10–30) and a drop
// tolerance around 1e-2…1e-4.
type ILUTOptions struct {
	Tau  float64 // relative drop tolerance; entries < Tau·‖row‖ are dropped
	LFil int     // max kept entries per row in each of the L and U parts (excl. diagonal); <=0 means unlimited
}

// DefaultILUT returns the setting used by the paper-style Block 2 / Schur 1
// subdomain solvers.
func DefaultILUT() ILUTOptions { return ILUTOptions{Tau: 1e-3, LFil: 20} }

// intHeap is a min-heap of column indices, used to process L-part entries
// in ascending column order as fill is created.
type intHeap []int

func (h intHeap) Len() int           { return len(h) }
func (h intHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// ILUT computes the dual-threshold incomplete factorization of Saad
// (ILUT(τ, lfil)): during the elimination of each row, entries smaller
// than τ·‖row‖ (mean-magnitude row norm) are dropped, and only the LFil
// largest entries are kept in each of the row's L and U parts (the
// diagonal is always kept). With Tau = 0 and LFil ≤ 0 the factorization is
// a complete LU without pivoting.
func ILUT(a *sparse.CSR, opt ILUTOptions) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("ilu: ILUT of non-square %d×%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lfil := opt.LFil
	if lfil <= 0 {
		lfil = n
	}

	m := sparse.NewCSR(n, n, a.NNZ()*2)
	diag := make([]int, n)
	f := &LU{M: m, Diag: diag}

	w := make([]float64, n)  // scatter workspace
	inRow := make([]bool, n) // membership of w
	var lCols intHeap        // active columns < i, heap-ordered
	uCols := make([]int, 0, n)
	procL := make([]int, 0, n) // kept L columns in elimination order

	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		var rowNorm float64
		lCols = lCols[:0]
		uCols = uCols[:0]
		procL = procL[:0]
		diagSeen := false
		for k, j := range cols {
			w[j] = vals[k]
			inRow[j] = true
			rowNorm += math.Abs(vals[k])
			if j < i {
				lCols = append(lCols, j)
			} else {
				uCols = append(uCols, j)
				if j == i {
					diagSeen = true
				}
			}
		}
		if !diagSeen {
			w[i] = 0
			inRow[i] = true
			uCols = append(uCols, i)
		}
		if rowNorm == 0 {
			return nil, zeroPivotErr("ILUT", i)
		}
		rowNorm /= float64(len(cols))
		drop := opt.Tau * rowNorm
		heap.Init(&lCols)

		// Eliminate in ascending column order; L fill-in re-enters the
		// heap, U fill-in joins uCols.
		for lCols.Len() > 0 {
			k := heap.Pop(&lCols).(int)
			lik := w[k] / m.Val[diag[k]]
			inRow[k] = false
			if math.Abs(lik) <= drop {
				continue
			}
			w[k] = lik
			procL = append(procL, k)
			// Fill lands only at columns > k; since the heap pops in
			// ascending order, it can never hit an already-eliminated
			// column.
			for kj := diag[k] + 1; kj < m.RowPtr[k+1]; kj++ {
				j := m.ColIdx[kj]
				delta := lik * m.Val[kj]
				if inRow[j] {
					w[j] -= delta
					continue
				}
				w[j] = -delta
				inRow[j] = true
				if j < i {
					heap.Push(&lCols, j)
				} else {
					uCols = append(uCols, j)
				}
			}
		}

		// Select survivors: largest |·| up to lfil in each part, dropping
		// small entries; diagonal always kept.
		lSel := selectLargest(procL, w, drop, lfil, -1)
		uSel := selectLargest(uCols, w, drop, lfil, i)

		sort.Ints(lSel)
		sort.Ints(uSel)
		for _, j := range lSel {
			m.ColIdx = append(m.ColIdx, j)
			m.Val = append(m.Val, w[j])
		}
		for _, j := range uSel {
			if j == i {
				diag[i] = len(m.ColIdx)
				m.ColIdx = append(m.ColIdx, j)
				m.Val = append(m.Val, fixPivot(w[j], rowNorm, &f.PivotFixes))
				continue
			}
			m.ColIdx = append(m.ColIdx, j)
			m.Val = append(m.Val, w[j])
		}
		m.RowPtr[i+1] = len(m.ColIdx)

		// Reset workspace.
		for _, j := range procL {
			inRow[j] = false
			w[j] = 0
		}
		for _, j := range uCols {
			inRow[j] = false
			w[j] = 0
		}
		// Dropped L columns already cleared inRow; their w entries are
		// stale but only reachable via inRow, which is false.
	}
	return f, nil
}

// selectLargest returns up to limit columns with the largest |w| values,
// excluding entries ≤ drop; the column `always` (the diagonal) is kept
// unconditionally and does not count against the limit.
func selectLargest(cand []int, w []float64, drop float64, limit, always int) []int {
	kept := make([]int, 0, len(cand))
	for _, j := range cand {
		if j == always || math.Abs(w[j]) > drop {
			kept = append(kept, j)
		}
	}
	// Fast path: everything fits.
	count := len(kept)
	if always >= 0 {
		count--
	}
	if count <= limit {
		return kept
	}
	sort.Slice(kept, func(a, b int) bool {
		ja, jb := kept[a], kept[b]
		if ja == always {
			return true
		}
		if jb == always {
			return false
		}
		return math.Abs(w[ja]) > math.Abs(w[jb])
	})
	if always >= 0 {
		return kept[:limit+1]
	}
	return kept[:limit]
}
