// Command scaling reports parallel speedup and efficiency for one test
// case and preconditioner over a processor sweep — the quantities behind
// the paper's §4.3 discussion of fixed-size (strong) scaling: with a
// fixed global problem, communication overhead favors small P until
// subdomains fit in cache.
//
// Usage:
//
//	scaling -case tc1-poisson2d -precond "Schur 1" -size 129 -procs 1,2,4,8,16
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"parapre"
	"parapre/internal/precond"
)

func main() {
	var (
		name    = flag.String("case", "tc1-poisson2d", "test case name")
		kind    = flag.String("precond", "Schur 1", "preconditioner")
		size    = flag.Int("size", 0, "grid resolution (0 = case default)")
		procs   = flag.String("procs", "1,2,4,8,16", "processor counts")
		machine = flag.String("machine", "cluster", "machine model: cluster | origin")
	)
	flag.Parse()

	var sz int
	found := false
	for _, c := range parapre.Cases() {
		if c.Name == *name {
			sz, found = c.DefaultSize, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "scaling: unknown case %q\n", *name)
		os.Exit(2)
	}
	if *size > 0 {
		sz = *size
	}
	var ps []int
	for _, tok := range strings.Split(*procs, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "scaling: bad proc count %q\n", tok)
			os.Exit(2)
		}
		ps = append(ps, v)
	}

	prob := parapre.BuildCase(*name, sz)
	fmt.Printf("%s, %d unknowns, %s, %s model\n", *name, prob.A.Rows, *kind, *machine)
	fmt.Printf("%-5s %-6s %-10s %-9s %-11s %-10s\n", "P", "#itr", "time(s)", "speedup", "efficiency", "time/itr")

	var t1 float64
	for _, p := range ps {
		cfg := parapre.DefaultConfig(p, precond.Kind(*kind))
		if *machine == "origin" {
			cfg.Machine = parapre.Origin3800()
		}
		res, err := parapre.Solve(prob, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scaling:", err)
			os.Exit(1)
		}
		total := res.SetupTime + res.SolveTime
		if t1 == 0 {
			t1 = total * float64(ps[0])
			// Speedups are relative to the first sweep point, scaled as if
			// it were P=1 work (exact when the sweep starts at 1).
		}
		sp := t1 / total
		eff := sp / float64(p)
		perIter := total / float64(res.Iterations)
		conv := ""
		if !res.Converged {
			conv = "  (n.c.)"
		}
		fmt.Printf("%-5d %-6d %-10.4f %-9.2f %-11.2f %-10.5f%s\n",
			p, res.Iterations, total, sp, eff, perIter, conv)
	}
}
