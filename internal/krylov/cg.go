package krylov

import (
	"math"

	"parapre/internal/paranoid"
)

// CG solves A·x = b for symmetric positive definite A with preconditioned
// conjugate gradients. x holds the initial guess on entry and the
// solution on exit. The paper uses one FFT-preconditioned CG iteration as
// the additive-Schwarz subdomain solver (§5.2); set MaxIters=1 for that.
//
//lint:allocfree steady state with a warmed Workspace; verified dynamically by TestCGZeroAllocSteadyState
func CG(n int, matvec Op, precond Prec, dot Dot, b, x []float64, opt Options) Result {
	if opt.MaxIters <= 0 {
		opt.MaxIters = DefaultOptions().MaxIters
	}
	nf := float64(n)
	ws := opt.Work
	if ws == nil {
		ws = NewWorkspace()
	}
	r := ws.vec(&ws.r, n)
	z := ws.vec(&ws.zVec, n)
	p := ws.vec(&ws.p, n)
	ap := ws.vec(&ws.ap, n)

	res := Result{}
	matvec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	opt.charge(nf)
	res.Initial = math.Sqrt(math.Max(dot(r, r), 0))
	if !finite(res.Initial) {
		res.Breakdown = true
		res.Err = breakdownErr("CG", 0, "residual norm", res.Initial)
		res.Final = res.Initial
		return res
	}
	if opt.RecordHistory {
		//lint:ignore allocfree History recording is opt-in diagnostics, excluded from the steady-state contract
		res.History = append(res.History, res.Initial)
	}
	if res.Initial == 0 {
		res.Converged = true
		return res
	}
	tolAbs := opt.Tol * res.Initial

	if precond != nil {
		precond(z, r)
		paranoid.CheckFiniteVec("krylov: CG preconditioned residual", z)
	} else {
		copy(z, r)
	}
	copy(p, z)
	rz := dot(r, z)
	paranoid.CheckFinite("krylov: CG r·z", rz)

	for it := 0; it < opt.MaxIters; it++ {
		matvec(ap, p)
		pap := dot(p, ap)
		if !finite(pap) || !finite(rz) {
			res.Breakdown = true
			res.Err = breakdownErr("CG", it+1, "curvature p·Ap", pap)
			res.Final = math.NaN()
			res.Iterations = it
			return res
		}
		if pap <= 0 {
			// Not SPD (or breakdown): bail out with the current iterate.
			res.Breakdown = true
			res.Err = breakdownErr("CG", it+1, "curvature p·Ap", pap)
			res.Final = math.Sqrt(math.Max(dot(r, r), 0))
			res.Iterations = it
			return res
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		opt.charge(4 * nf)
		res.Iterations = it + 1
		rn := math.Sqrt(math.Max(dot(r, r), 0))
		res.Final = rn
		if opt.RecordHistory {
			//lint:ignore allocfree History recording is opt-in diagnostics, excluded from the steady-state contract
			res.History = append(res.History, rn)
		}
		if rn <= tolAbs {
			res.Converged = true
			return res
		}
		if precond != nil {
			precond(z, r)
			paranoid.CheckFiniteVec("krylov: CG preconditioned residual", z)
		} else {
			copy(z, r)
		}
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		opt.charge(2 * nf)
	}
	return res
}
