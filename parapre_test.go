package parapre_test

import (
	"bytes"
	"testing"

	"parapre"
)

func TestPublicAPIQuickstartPath(t *testing.T) {
	prob := parapre.BuildCase("tc1-poisson2d", 17)
	cfg := parapre.DefaultConfig(4, parapre.Schur1)
	cfg.KeepX = true
	res, err := parapre.Solve(prob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("quickstart did not converge: %+v", res)
	}
	d, err := parapre.Verify(prob, res.X)
	if err != nil {
		t.Fatal(err)
	}
	if d > 2e-4 {
		t.Fatalf("solution error %v", d)
	}
}

func TestPublicAPICases(t *testing.T) {
	cs := parapre.Cases()
	if len(cs) != 7 { // the paper's six plus the jump-coefficient extension
		t.Fatalf("%d cases, want 7", len(cs))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BuildCase of unknown name did not panic")
		}
	}()
	parapre.BuildCase("not-a-case", 10)
}

func TestPublicAPIExperiments(t *testing.T) {
	if got := len(parapre.Experiments()); got != 12 { // 11 paper tables + jump extension
		t.Fatalf("%d experiments, want 12", got)
	}
	e, err := parapre.ExperimentByID("tc6-cluster")
	if err != nil || e.CaseName != "tc6-elasticity" {
		t.Fatalf("ExperimentByID: %+v %v", e, err)
	}
}

func TestPublicAPIMachines(t *testing.T) {
	if parapre.LinuxCluster().Name != "LinuxCluster" || parapre.Origin3800().Name != "Origin3800" {
		t.Fatal("machine constructors broken")
	}
	if parapre.LinuxCluster().Latency <= parapre.Origin3800().Latency {
		t.Fatal("cluster should have higher latency than the Origin interconnect")
	}
}

func TestPublicAPIMatrixMarket(t *testing.T) {
	prob := parapre.BuildCase("tc1-poisson2d", 9)
	var buf bytes.Buffer
	if err := parapre.WriteMatrixMarket(&buf, prob.A); err != nil {
		t.Fatal(err)
	}
	a, err := parapre.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(prob.A) {
		t.Fatal("matrix market round trip lost data")
	}
	// Mesh-less solve through the public API.
	p2 := &parapre.Problem{Name: "mm", A: a, B: prob.B}
	res, err := parapre.Solve(p2, parapre.DefaultConfig(2, parapre.Block2))
	if err != nil || !res.Converged {
		t.Fatalf("mesh-less public solve: %v %+v", err, res)
	}
}
