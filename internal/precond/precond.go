// Package precond implements the parallel algebraic preconditioners the
// paper compares (§2, §4.4):
//
//	Block 1  — block Jacobi with ILU(0) subdomain solves
//	Block 2  — block Jacobi with ILUT subdomain solves
//	Schur 1  — Schur-complement enhanced: a few distributed GMRES
//	           iterations on the global interface system, block-Jacobi
//	           preconditioned by the trailing ILUT factors; local B-solves
//	           by a few ILUT-preconditioned GMRES iterations
//	Schur 2  — expanded Schur complement (group-independent-set local
//	           interfaces + interdomain interfaces) solved by a few
//	           distributed GMRES iterations preconditioned by ILU(0) of
//	           the local expanded Schur matrix, with the ARMS reduction as
//	           approximate subdomain solver
//
// plus the overlapping additive Schwarz preconditioner of §5.2 (with
// optional coarse-grid correction) used as the comparison point for Test
// Case 1.
//
// Every preconditioner is applied collectively: all ranks call Apply at
// the same point of the outer FGMRES iteration. The Schur variants
// perform inner distributed iterations inside Apply, which is why the
// outer accelerator must be the flexible FGMRES.
package precond

import "parapre/internal/dist"

// Preconditioner is one rank's preconditioner: z = M⁻¹·r over the rank's
// owned unknowns. Implementations that communicate (the Schur and Schwarz
// variants) must be applied collectively by all ranks.
type Preconditioner interface {
	Apply(c *dist.Comm, z, r []float64)
	Name() string
}

// Kind selects one of the paper's preconditioners by name.
type Kind string

// The preconditioner names used throughout the benchmarks, matching the
// paper's notation.
const (
	KindBlock1 Kind = "Block 1"
	KindBlock2 Kind = "Block 2"
	// KindBlockARMS is the extension variant: block Jacobi with a
	// multilevel ARMS subdomain solver.
	KindBlockARMS Kind = "Block ARMS"
	// KindBlock2P is block Jacobi with the column-pivoting ILUTP
	// factorization (robust for weak-diagonal subdomain blocks).
	KindBlock2P Kind = "Block 2P"
	// KindBlockIC is block Jacobi with incomplete Cholesky — the SPD
	// preconditioner for the distributed CG baseline.
	KindBlockIC Kind = "Block IC"
	KindSchur1  Kind = "Schur 1"
	KindSchur2  Kind = "Schur 2"
	// KindMSLR is the multilevel low-rank Schur preconditioner: Schur 1's
	// interface solve on top of a recursive vertex-separator hierarchy
	// with low-rank Schur corrections (package mslr).
	KindMSLR Kind = "MSLR"
	KindNone Kind = "None"
)

// identity is the trivial preconditioner (used by baselines).
type identity struct{}

// NewIdentity returns the identity preconditioner.
func NewIdentity() Preconditioner { return identity{} }

func (identity) Apply(c *dist.Comm, z, r []float64) { copy(z, r) }
func (identity) Name() string                       { return string(KindNone) }
