package arms

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"parapre/internal/fem"
	"parapre/internal/grid"
	"parapre/internal/ilu"
	"parapre/internal/krylov"
	"parapre/internal/sparse"
)

func poissonMatrix(t testing.TB, m int) (*sparse.CSR, []float64) {
	g := grid.UnitSquareTri(m)
	a, b := fem.AssembleScalar(g, fem.ScalarPDE{Diffusion: 1, Source: func(x []float64) float64 { return 1 }})
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = 0
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	return a, b
}

func TestGroupIndependentSetInvariant(t *testing.T) {
	a, _ := poissonMatrix(t, 15)
	for _, maxG := range []int{1, 4, 16, 64} {
		group, ng := GroupIndependentSet(a, maxG)
		if ng == 0 {
			t.Fatalf("maxG=%d: no groups", maxG)
		}
		sizes := make([]int, ng)
		for v, g := range group {
			if g == -2 {
				t.Fatalf("vertex %d unassigned", v)
			}
			if g >= 0 {
				sizes[g]++
			}
		}
		for g, s := range sizes {
			if s == 0 {
				t.Fatalf("group %d empty", g)
			}
			if s > maxG {
				t.Fatalf("group %d has %d > maxG %d members", g, s, maxG)
			}
		}
		// Core invariant: no edge connects two different groups.
		for v := 0; v < a.Rows; v++ {
			if group[v] < 0 {
				continue
			}
			cols, _ := a.Row(v)
			for _, w := range cols {
				if w != v && group[w] >= 0 && group[w] != group[v] {
					t.Fatalf("maxG=%d: edge (%d,%d) crosses groups %d-%d", maxG, v, w, group[v], group[w])
				}
			}
		}
	}
}

func TestGroupIndependentSetReducesMost(t *testing.T) {
	// On a FEM mesh most unknowns should land in groups, not the
	// separator, otherwise the reduction is pointless.
	a, _ := poissonMatrix(t, 21)
	group, _ := GroupIndependentSet(a, 24)
	sep := 0
	for _, g := range group {
		if g < 0 {
			sep++
		}
	}
	if sep*2 > a.Rows {
		t.Fatalf("separator has %d of %d vertices", sep, a.Rows)
	}
}

func TestIndSetPermContiguousGroups(t *testing.T) {
	a, _ := poissonMatrix(t, 11)
	group, ng := GroupIndependentSet(a, 10)
	perm, nB, blocks := IndSetPerm(group, ng)
	if !perm.IsValid() {
		t.Fatal("invalid permutation")
	}
	for g, ext := range blocks {
		for i := ext[0]; i < ext[1]; i++ {
			if group[perm[i]] != g {
				t.Fatalf("block %d position %d holds vertex of group %d", g, i, group[perm[i]])
			}
		}
	}
	for i := nB; i < len(perm); i++ {
		if group[perm[i]] >= 0 {
			t.Fatalf("separator region holds grouped vertex at %d", i)
		}
	}
}

func TestARMSBlockDiagonalB(t *testing.T) {
	// After permutation, the leading block must have no entries between
	// different group extents.
	a, _ := poissonMatrix(t, 13)
	group, ng := GroupIndependentSet(a, 12)
	perm, nB, blocks := IndSetPerm(group, ng)
	p := sparse.PermuteSym(a, perm)
	whichBlock := make([]int, nB)
	for g, ext := range blocks {
		for i := ext[0]; i < ext[1]; i++ {
			whichBlock[i] = g
		}
	}
	for i := 0; i < nB; i++ {
		cols, _ := p.Row(i)
		for _, j := range cols {
			if j < nB && whichBlock[j] != whichBlock[i] {
				t.Fatalf("B not block diagonal: entry (%d,%d) crosses blocks", i, j)
			}
		}
	}
}

func TestARMSExactWhenNoDropping(t *testing.T) {
	// One level, no drop tolerance, exact last-level LU ⇒ ARMS is a
	// direct solver.
	a, b := poissonMatrix(t, 9)
	s, err := New(a, Options{Levels: 1, MaxGroup: 8, DropTol: 0,
		ILUT: ilu.ILUTOptions{Tau: 0, LFil: 0}})
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, a.Rows)
	s.Apply(z, b)
	r := append([]float64(nil), b...)
	a.MulVecSub(r, z)
	if res := sparse.Norm2(r) / sparse.Norm2(b); res > 1e-9 {
		t.Fatalf("exact ARMS residual %v", res)
	}
}

func TestARMSTwoLevelExact(t *testing.T) {
	a, b := poissonMatrix(t, 9)
	s, err := New(a, Options{Levels: 2, MaxGroup: 6, DropTol: 0,
		ILUT: ilu.ILUTOptions{Tau: 0, LFil: 0}})
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, a.Rows)
	s.Apply(z, b)
	r := append([]float64(nil), b...)
	a.MulVecSub(r, z)
	if res := sparse.Norm2(r) / sparse.Norm2(b); res > 1e-9 {
		t.Fatalf("two-level exact ARMS residual %v", res)
	}
}

func TestARMSPreconditionsGMRES(t *testing.T) {
	a, b := poissonMatrix(t, 17)
	s, err := New(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	run := func(pr krylov.Prec) krylov.Result {
		x := make([]float64, n)
		return krylov.SolveCSR(a, pr, b, x, krylov.Options{Restart: 20, MaxIters: 400, Tol: 1e-8})
	}
	plain := run(nil)
	prec := run(func(z, r []float64) { s.Apply(z, r) })
	if !prec.Converged {
		t.Fatalf("ARMS-preconditioned GMRES failed: %+v", prec)
	}
	if plain.Converged && prec.Iterations*2 > plain.Iterations {
		t.Fatalf("ARMS not effective: %d vs %d iterations", prec.Iterations, plain.Iterations)
	}
}

func TestARMSUnsymmetric(t *testing.T) {
	g := grid.UnitSquareTri(13)
	a, b := fem.AssembleScalar(g, fem.ScalarPDE{
		Diffusion: 1, Velocity: []float64{700, 700}, SUPG: true,
		Source: func(x []float64) float64 { return 1 },
	})
	onB := g.BoundaryNodes()
	bc := map[int]float64{}
	for n := 0; n < g.NumNodes(); n++ {
		if onB[n] {
			bc[n] = 0
		}
	}
	fem.ApplyDirichlet(a, b, bc)
	s, err := New(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.Rows)
	res := krylov.SolveCSR(a, func(z, r []float64) { s.Apply(z, r) }, b, x,
		krylov.Options{Restart: 20, MaxIters: 300, Tol: 1e-8, Flexible: true})
	if !res.Converged {
		t.Fatalf("ARMS on convection-dominated system failed: %+v", res)
	}
}

func TestARMSSolveFlopsPositive(t *testing.T) {
	a, _ := poissonMatrix(t, 9)
	s, err := New(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s.SolveFlops() <= 0 {
		t.Fatal("SolveFlops not positive")
	}
	if s.N() != a.Rows {
		t.Fatal("N mismatch")
	}
}

func TestARMSRejectsNonSquare(t *testing.T) {
	if _, err := New(sparse.NewCSR(2, 3, 0), DefaultOptions()); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestARMSRandomUnstructured(t *testing.T) {
	// Diagonally dominant random pattern (structurally symmetric).
	rng := rand.New(rand.NewSource(1))
	n := 120
	coo := sparse.NewCOO(n, n, n*8)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 12)
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			if j != i {
				v := rng.NormFloat64()
				coo.Add(i, j, v)
				coo.Add(j, i, v*0.5) // structurally symmetric, unsymmetric values
			}
		}
	}
	a := coo.ToCSR()
	s, err := New(a, Options{Levels: 3, MaxGroup: 10, DropTol: 1e-5, ILUT: ilu.ILUTOptions{Tau: 1e-4, LFil: 30}})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	z := make([]float64, n)
	s.Apply(z, b)
	// M⁻¹ should be a decent approximation of A⁻¹ here: residual well
	// below the unpreconditioned baseline.
	r := append([]float64(nil), b...)
	a.MulVecSub(r, z)
	if ratio := sparse.Norm2(r) / sparse.Norm2(b); math.IsNaN(ratio) || ratio > 0.5 {
		t.Fatalf("ARMS apply weak: residual ratio %v", ratio)
	}
}

func TestGroupIndependentSetPropertyRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		coo := sparse.NewCOO(n, n, n*6)
		for i := 0; i < n; i++ {
			coo.Add(i, i, 1)
			for k := 0; k < 2; k++ {
				j := rng.Intn(n)
				if j != i {
					coo.Add(i, j, 1)
					coo.Add(j, i, 1)
				}
			}
		}
		a := coo.ToCSR()
		maxG := 1 + rng.Intn(10)
		group, ng := GroupIndependentSet(a, maxG)
		sizes := make([]int, ng)
		for v, g := range group {
			if g == -2 {
				return false
			}
			if g >= 0 {
				sizes[g]++
				cols, _ := a.Row(v)
				for _, w := range cols {
					if w != v && group[w] >= 0 && group[w] != g {
						return false
					}
				}
			}
		}
		for _, s := range sizes {
			if s == 0 || s > maxG {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
