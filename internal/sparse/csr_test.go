package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randCSR builds a random sparse matrix with about density·r·c entries,
// always including the diagonal when square (so it is usable by
// factorization tests too).
func randCSR(rng *rand.Rand, r, c int, density float64) *CSR {
	coo := NewCOO(r, c, int(float64(r*c)*density)+r)
	for i := 0; i < r; i++ {
		if i < c {
			coo.Add(i, i, 4+rng.Float64())
		}
		for j := 0; j < c; j++ {
			if j != i && rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

func randVec(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestCOOToCSRSumsDuplicates(t *testing.T) {
	coo := NewCOO(3, 3, 8)
	coo.Add(0, 0, 1)
	coo.Add(0, 0, 2)
	coo.Add(1, 2, 5)
	coo.Add(1, 0, -1)
	coo.Add(1, 2, -5)
	coo.Add(2, 1, 7)
	a := coo.ToCSR()
	if err := a.CheckValid(); err != nil {
		t.Fatal(err)
	}
	if got := a.At(0, 0); got != 3 {
		t.Errorf("At(0,0) = %v, want 3", got)
	}
	if got := a.At(1, 2); got != 0 {
		t.Errorf("At(1,2) = %v, want 0 (cancelled duplicates are kept as explicit zero)", got)
	}
	if got := a.At(1, 0); got != -1 {
		t.Errorf("At(1,0) = %v, want -1", got)
	}
	if got := a.At(2, 1); got != 7 {
		t.Errorf("At(2,1) = %v, want 7", got)
	}
	if got := a.At(2, 2); got != 0 {
		t.Errorf("At(2,2) = %v, want 0 for absent entry", got)
	}
}

func TestCOOAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range Add")
		}
	}()
	NewCOO(2, 2, 1).Add(2, 0, 1)
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		r, c := 1+rng.Intn(30), 1+rng.Intn(30)
		a := randCSR(rng, r, c, 0.3)
		x := randVec(rng, c)
		want := a.Dense().MulVec(x)
		got := a.MulVec(x)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("trial %d: MulVec[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMulVecToPanicsOnShortInput(t *testing.T) {
	a := Identity(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short x")
		}
	}()
	a.MulVecTo(make([]float64, 3), make([]float64, 2))
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		a := randCSR(rng, 1+rng.Intn(25), 1+rng.Intn(25), 0.25)
		tt := a.Transpose().Transpose()
		if !a.Equal(tt) {
			t.Fatalf("trial %d: (Aᵀ)ᵀ != A", trial)
		}
	}
}

func TestTransposeMatvecIdentity(t *testing.T) {
	// Property: yᵀ(A x) == (Aᵀ y)ᵀ x.
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(20), 1+r.Intn(20)
		a := randCSR(rng, m, n, 0.3)
		x, y := randVec(r, n), randVec(r, m)
		lhs := Dot(y, a.MulVec(x))
		rhs := Dot(a.Transpose().MulVec(y), x)
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randVec(rng, 17)
	y := Identity(17).MulVec(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("I·x differs at %d", i)
		}
	}
}

func TestDiagonal(t *testing.T) {
	coo := NewCOO(3, 3, 4)
	coo.Add(0, 0, 2)
	coo.Add(1, 2, 9)
	coo.Add(2, 2, -4)
	d := coo.ToCSR().Diagonal()
	want := []float64{2, 0, -4}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("Diagonal[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestAtAndSetExisting(t *testing.T) {
	a := randCSR(rand.New(rand.NewSource(5)), 10, 10, 0.3)
	if ok := a.SetExisting(0, 0, 42); !ok {
		t.Fatal("diagonal entry should exist")
	}
	if got := a.At(0, 0); got != 42 {
		t.Fatalf("At(0,0) = %v after SetExisting", got)
	}
	if a.SetExisting(0, 999999%10, 1) && a.At(0, 999999%10) == 0 {
		t.Fatal("SetExisting claimed success on absent entry")
	}
	if !a.AddExisting(0, 0, 8) || a.At(0, 0) != 50 {
		t.Fatal("AddExisting on diagonal failed")
	}
}

func TestMulVecAddSub(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randCSR(rng, 12, 9, 0.4)
	x := randVec(rng, 9)
	y0 := randVec(rng, 12)

	y := append([]float64(nil), y0...)
	a.MulVecAdd(y, 2.5, x)
	ax := a.MulVec(x)
	for i := range y {
		want := y0[i] + 2.5*ax[i]
		if math.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("MulVecAdd[%d] = %v, want %v", i, y[i], want)
		}
	}

	y = append([]float64(nil), y0...)
	a.MulVecSub(y, x)
	for i := range y {
		want := y0[i] - ax[i]
		if math.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("MulVecSub[%d] = %v, want %v", i, y[i], want)
		}
	}
}

func TestCheckValidDetectsCorruption(t *testing.T) {
	a := Identity(4)
	a.ColIdx[2] = 99
	if err := a.CheckValid(); err == nil {
		t.Fatal("CheckValid accepted out-of-range column")
	}
	b := Identity(4)
	b.RowPtr[2] = 0
	if err := b.CheckValid(); err == nil {
		t.Fatal("CheckValid accepted non-monotone RowPtr")
	}
	c := Identity(4)
	c.ColIdx[1] = 0 // duplicate of row 0's column? row 1 col 0 < nothing; makes row 1 = {0}, fine; instead break sortedness in a 2-entry row
	coo := NewCOO(1, 3, 2)
	coo.Add(0, 2, 1)
	coo.Add(0, 1, 1)
	d := coo.ToCSR()
	d.ColIdx[0], d.ColIdx[1] = d.ColIdx[1], d.ColIdx[0]
	if err := d.CheckValid(); err == nil {
		t.Fatal("CheckValid accepted unsorted row")
	}
	if err := c.CheckValid(); err != nil {
		t.Fatalf("unexpected error on valid matrix: %v", err)
	}
}

func TestScale(t *testing.T) {
	a := Identity(3)
	a.Scale(-2)
	for i := 0; i < 3; i++ {
		if a.At(i, i) != -2 {
			t.Fatalf("Scale failed at %d", i)
		}
	}
}

func TestFromTriplets(t *testing.T) {
	a := FromTriplets(2, 2, []int{0, 1, 0}, []int{1, 0, 1}, []float64{3, 4, 1})
	if a.At(0, 1) != 4 || a.At(1, 0) != 4 {
		t.Fatalf("FromTriplets produced %v and %v, want 4 and 4", a.At(0, 1), a.At(1, 0))
	}
}

func TestCSRString(t *testing.T) {
	if s := Identity(2).String(); s != "CSR{2×2, nnz=2}" {
		t.Fatalf("String() = %q", s)
	}
}

func TestAccessorsAndSortRows(t *testing.T) {
	a := Identity(3)
	if r, c := a.Dims(); r != 3 || c != 3 {
		t.Fatal("Dims")
	}
	if a.RowNNZ(1) != 1 {
		t.Fatal("RowNNZ")
	}
	b := a.Clone()
	b.Val[0] = 9
	if a.Val[0] == 9 {
		t.Fatal("Clone shares storage")
	}
	// Build unsorted rows by hand and restore the invariant.
	m := &CSR{Rows: 1, Cols: 3, RowPtr: []int{0, 3}, ColIdx: []int{2, 0, 1}, Val: []float64{3, 1, 2}}
	m.SortRows()
	if err := m.CheckValid(); err != nil {
		t.Fatal(err)
	}
	if m.Val[0] != 1 || m.Val[2] != 3 {
		t.Fatalf("SortRows misaligned values: %v", m.Val)
	}
}

func TestCOOLen(t *testing.T) {
	c := NewCOO(2, 2, 4)
	c.Add(0, 0, 1)
	c.Add(0, 0, 2)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a := Identity(3)
	b := Identity(3)
	if !a.Equal(b) {
		t.Fatal("identical matrices unequal")
	}
	b.Val[1] = 5
	if a.Equal(b) {
		t.Fatal("value change undetected")
	}
	c := Identity(4)
	if a.Equal(c) {
		t.Fatal("dimension change undetected")
	}
	d := a.Clone()
	d.ColIdx[0] = 1
	d.ColIdx[1] = 0 // same nnz, different pattern (invalid but Equal should see it)
	if a.Equal(d) {
		t.Fatal("pattern change undetected")
	}
}
