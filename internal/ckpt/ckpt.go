// Package ckpt gives the distributed solver a durable checkpoint/restart
// story: periodic deep snapshots of every rank's solver recurrence
// (package krylov), virtual-time accounting, fault-plan RNG cursor and
// observability counters, serialized with a versioned, checksummed binary
// codec and persisted by atomic write-rename — so a solve killed mid-flight
// (a crashed rank process, a lost node) resumes from the last checkpoint
// and replays the exact arithmetic of the uninterrupted run.
//
// The format is deliberately self-contained and paranoid on the read side:
// Decode never panics on hostile bytes; truncated, corrupted or
// version-skewed files surface as typed *CorruptError / *VersionError, and
// the encoding is canonical (map entries sorted, nil and empty slices
// distinguished consistently) so encode→decode→encode is byte-stable —
// the property the round-trip tests and the fuzz target pin down.
package ckpt

import (
	"fmt"

	"parapre/internal/dist"
	"parapre/internal/krylov"
)

// Magic is the four-byte file signature, "PCKP".
var Magic = [4]byte{'P', 'C', 'K', 'P'}

// Version is the current format version written by Encode.
const Version uint32 = 1

// RankState is one rank's shard of a global checkpoint: everything the
// rank needs to rejoin the solve exactly where the world stopped.
type RankState struct {
	Rank int

	// Solver is the deep krylov recurrence snapshot. It is non-nil in
	// every checkpoint the solver writes; the codec tolerates its absence
	// for forward flexibility.
	Solver *krylov.State

	// Stats is the rank's virtual-time accounting at the snapshot, so the
	// restored run's Clock = ComputeTime + CommTime + FaultDelay partition
	// covers the whole logical solve, not just the post-restore part.
	Stats dist.Stats

	// FaultDraws/FaultOps is the fault-plan RNG cursor (dist.FaultCursor):
	// the restore fast-forwards the stream so the resumed solve sees
	// exactly the faults the uninterrupted run would have seen.
	FaultDraws uint64
	FaultOps   uint64

	// Counters is the rank's observability counter snapshot (nil when
	// tracing is off).
	Counters map[string]float64
}

// Checkpoint is a globally consistent snapshot: all P ranks captured at
// the same replicated solver iteration.
type Checkpoint struct {
	Seq   uint64      // monotone checkpoint number within the solve
	Iter  uint64      // replicated solver iteration the snapshot was taken at
	Ranks []RankState // exactly P shards, in rank order
}

// P returns the world size of the checkpoint.
func (c *Checkpoint) P() int { return len(c.Ranks) }

// CorruptError reports a checkpoint file whose bytes do not decode: bad
// magic, a failed checksum, a truncation, or an internal inconsistency.
// Offset is the byte position at which decoding gave up (-1 when the
// failure is not positional, e.g. a checksum mismatch).
type CorruptError struct {
	Reason string
	Offset int64
}

func (e *CorruptError) Error() string {
	if e.Offset >= 0 {
		return fmt.Sprintf("ckpt: corrupt checkpoint at byte %d: %s", e.Offset, e.Reason)
	}
	return "ckpt: corrupt checkpoint: " + e.Reason
}

// VersionError reports a checkpoint written by an incompatible format
// version.
type VersionError struct {
	Got  uint32
	Want uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("ckpt: checkpoint format version %d, this build reads version %d", e.Got, e.Want)
}

// Sink receives per-rank checkpoint shards. The solver side calls
// PutShard once per rank per checkpoint; a sink that has collected all P
// shards of a sequence persists them as one atomic checkpoint. FileWriter
// is the in-process implementation; the socket transport's client
// forwards shards to the hub, which owns the FileWriter.
type Sink interface {
	PutShard(seq, iter uint64, p int, rs *RankState) error
}
