package sparse

import (
	"math"
	"math/rand"
	"testing"

	"parapre/internal/par"
)

// withWorkers pins the par worker count for the duration of fn.
func withWorkers(w int, fn func()) {
	prev := par.SetWorkers(w)
	defer par.SetWorkers(prev)
	fn()
}

// randCSRLarge builds a random n×n matrix with about nnzPerRow stored
// entries per row — large enough to cross every parallel threshold.
func randCSRLarge(rng *rand.Rand, n, nnzPerRow int) *CSR {
	coo := NewCOO(n, n, n*(nnzPerRow+1))
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4+rng.Float64())
		for k := 0; k < nnzPerRow; k++ {
			coo.Add(i, rng.Intn(n), rng.NormFloat64())
		}
	}
	// A few very long rows so the nnz-balanced partition actually matters.
	for k := 0; k < n/2; k++ {
		coo.Add(0, rng.Intn(n), rng.NormFloat64())
		coo.Add(n-1, rng.Intn(n), rng.NormFloat64())
	}
	return coo.ToCSR()
}

// randVecMixed draws entries spanning many magnitudes, so reductions are
// rounding-sensitive and ordering bugs cannot hide.
func randVecMixed(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(9)-4))
	}
	return x
}

var workerSweep = []int{1, 2, 3, 8}

// TestSpMVBitIdenticalAcrossWorkers is the tentpole equivalence property:
// the three matrix-vector kernels produce bit-identical vectors at every
// worker count, including the skewed-row partitions.
func TestSpMVBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randCSRLarge(rng, 3000, 8)
	if a.NNZ() < spmvParMinNNZ {
		t.Fatalf("test matrix too small (nnz=%d) to engage the parallel path", a.NNZ())
	}
	x := randVecMixed(rng, a.Cols)
	y0 := randVecMixed(rng, a.Rows)

	type out struct{ to, add, sub []float64 }
	run := func() out {
		var o out
		o.to = make([]float64, a.Rows)
		a.MulVecTo(o.to, x)
		o.add = append([]float64(nil), y0...)
		a.MulVecAdd(o.add, 1.37, x)
		o.sub = append([]float64(nil), y0...)
		a.MulVecSub(o.sub, x)
		return o
	}
	var ref out
	withWorkers(1, func() { ref = run() })
	for _, w := range workerSweep[1:] {
		withWorkers(w, func() {
			got := run()
			for i := range ref.to {
				if got.to[i] != ref.to[i] {
					t.Fatalf("w=%d: MulVecTo[%d] = %x, want %x", w, i, got.to[i], ref.to[i])
				}
				if got.add[i] != ref.add[i] {
					t.Fatalf("w=%d: MulVecAdd[%d] = %x, want %x", w, i, got.add[i], ref.add[i])
				}
				if got.sub[i] != ref.sub[i] {
					t.Fatalf("w=%d: MulVecSub[%d] = %x, want %x", w, i, got.sub[i], ref.sub[i])
				}
			}
		})
	}
}

// TestReductionsBitIdenticalAcrossWorkers checks the deterministic blocked
// reductions and the elementwise kernels on vectors long enough to engage
// every parallel path.
func TestReductionsBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 5*par.BlockSize + 137
	x := randVecMixed(rng, n)
	y := randVecMixed(rng, n)

	type out struct {
		dot, n2, ninf float64
		axpy, scale   []float64
	}
	run := func() out {
		var o out
		o.dot = Dot(x, y)
		o.n2 = Norm2(x)
		o.ninf = NormInf(x)
		o.axpy = append([]float64(nil), y...)
		Axpy(-0.73, x, o.axpy)
		o.scale = make([]float64, n)
		ScaleTo(o.scale, 1/3.0, x)
		return o
	}
	var ref out
	withWorkers(1, func() { ref = run() })
	for _, w := range workerSweep[1:] {
		withWorkers(w, func() {
			got := run()
			if got.dot != ref.dot || got.n2 != ref.n2 || got.ninf != ref.ninf {
				t.Fatalf("w=%d: reductions differ: dot %x/%x n2 %x/%x ninf %x/%x",
					w, got.dot, ref.dot, got.n2, ref.n2, got.ninf, ref.ninf)
			}
			for i := range ref.axpy {
				if got.axpy[i] != ref.axpy[i] || got.scale[i] != ref.scale[i] {
					t.Fatalf("w=%d: elementwise kernel differs at %d", w, i)
				}
			}
		})
	}
}

// TestDotShortVectorKeepsSerialOrder pins the compatibility guarantee:
// vectors no longer than one reduction block accumulate exactly like the
// historical serial kernel.
func TestDotShortVectorKeepsSerialOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randVec(rng, par.BlockSize)
	y := randVec(rng, par.BlockSize)
	var want float64
	for i, v := range x {
		want += v * y[i]
	}
	for _, w := range workerSweep {
		withWorkers(w, func() {
			if got := Dot(x, y); got != want {
				t.Fatalf("w=%d: short Dot = %x, want serial %x", w, got, want)
			}
		})
	}
}

// TestToCSRBitIdenticalAcrossWorkers: duplicate-heavy COO conversion must
// not depend on the worker count.
func TestToCSRBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 400
	coo := NewCOO(n, n, 24*n)
	for k := 0; k < 24*n; k++ {
		coo.Add(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
	}
	if coo.Len() < cooParMinTriplets {
		t.Fatalf("COO too small (%d) to engage the parallel path", coo.Len())
	}
	var ref *CSR
	withWorkers(1, func() { ref = coo.ToCSR() })
	if err := ref.CheckValid(); err != nil {
		t.Fatal(err)
	}
	for _, w := range workerSweep[1:] {
		withWorkers(w, func() {
			got := coo.ToCSR()
			if err := got.CheckValid(); err != nil {
				t.Fatalf("w=%d: %v", w, err)
			}
			if !got.Equal(ref) {
				t.Fatalf("w=%d: parallel ToCSR differs from serial", w)
			}
		})
	}
}

// TestMulVecAddSubDimensionGuards: the two kernels that used to read out
// of bounds (or silently truncate) now panic like MulVecTo.
func TestMulVecAddSubDimensionGuards(t *testing.T) {
	a := Identity(4)
	short := make([]float64, 3)
	full := make([]float64, 4)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic on short input", name)
			}
		}()
		fn()
	}
	mustPanic("MulVecAdd short x", func() { a.MulVecAdd(full, 1, short) })
	mustPanic("MulVecAdd short y", func() { a.MulVecAdd(short, 1, full) })
	mustPanic("MulVecSub short x", func() { a.MulVecSub(full, short) })
	mustPanic("MulVecSub short y", func() { a.MulVecSub(short, full) })
}

// TestRowPartition checks the nnz-balanced boundaries: full coverage,
// monotone, cached, and invalidated by structural growth.
func TestRowPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randCSRLarge(rng, 500, 6)
	for _, segs := range []int{1, 2, 3, 7} {
		b := a.rowPartition(segs)
		if len(b) != segs+1 || b[0] != 0 || b[segs] != a.Rows {
			t.Fatalf("segs=%d: bad bounds %v", segs, b)
		}
		for s := 0; s < segs; s++ {
			if b[s] > b[s+1] {
				t.Fatalf("segs=%d: bounds not monotone: %v", segs, b)
			}
		}
	}
	// Cache hit: same slice back for unchanged shape.
	b1 := a.rowPartition(4)
	b2 := a.rowPartition(4)
	if &b1[0] != &b2[0] {
		t.Fatal("partition not cached across identical calls")
	}
	// Structural change (extra stored entry in the last row) invalidates
	// the cache.
	a.RowPtr[a.Rows]++
	a.ColIdx = append(a.ColIdx, a.Cols-1)
	a.Val = append(a.Val, 1.0)
	b3 := a.rowPartition(4)
	if &b3[0] == &b1[0] {
		t.Fatal("partition cache not invalidated by structural change")
	}
	if b3[0] != 0 || b3[4] != a.Rows {
		t.Fatalf("recomputed bounds invalid: %v", b3)
	}
}

// TestSortRowsMatchesReference covers both the insertion-sort fast path
// and the reused-sorter path for long rows.
func TestSortRowsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Row 0 long (> insertionSortMaxRow), remaining rows short.
	rowLens := []int{insertionSortMaxRow * 3, 1, 0, 7, insertionSortMaxRow}
	a := &CSR{Rows: len(rowLens), Cols: 1000, RowPtr: make([]int, len(rowLens)+1)}
	type pair struct {
		c int
		v float64
	}
	want := make([][]pair, len(rowLens))
	for i, ln := range rowLens {
		seen := map[int]bool{}
		var ps []pair
		for len(ps) < ln {
			c := rng.Intn(1000)
			if seen[c] {
				continue
			}
			seen[c] = true
			ps = append(ps, pair{c, rng.NormFloat64()})
		}
		for _, p := range ps {
			a.ColIdx = append(a.ColIdx, p.c)
			a.Val = append(a.Val, p.v)
		}
		a.RowPtr[i+1] = len(a.ColIdx)
		sorted := append([]pair(nil), ps...)
		for x := 1; x < len(sorted); x++ {
			for y := x; y > 0 && sorted[y-1].c > sorted[y].c; y-- {
				sorted[y-1], sorted[y] = sorted[y], sorted[y-1]
			}
		}
		want[i] = sorted
	}
	a.SortRows()
	if err := a.CheckValid(); err != nil {
		t.Fatal(err)
	}
	for i := range rowLens {
		cols, vals := a.Row(i)
		for k, p := range want[i] {
			if cols[k] != p.c || vals[k] != p.v {
				t.Fatalf("row %d entry %d: got (%d,%g), want (%d,%g)", i, k, cols[k], vals[k], p.c, p.v)
			}
		}
	}
}
