// Convection example: the paper's hardest 2D case — convection-dominated
// flow (|v| = 1000, Test Case 5) — solved with all four parallel algebraic
// preconditioners across a processor sweep. It reproduces the paper's
// qualitative finding for this case: Schur 1 is the clear winner in
// overall efficiency, while the block preconditioners need many more
// iterations as P grows.
package main

import (
	"fmt"
	"log"

	"parapre"
	"parapre/internal/precond"
)

func main() {
	const size = 65
	prob := parapre.BuildCase("tc5-convdiff", size)
	fmt.Printf("convection-diffusion, |v|=1000 at 45°, SUPG, %d unknowns\n\n", prob.A.Rows)

	kinds := []precond.Kind{parapre.Schur1, parapre.Schur2, parapre.Block1, parapre.Block2}
	fmt.Printf("%-4s", "P")
	for _, k := range kinds {
		fmt.Printf(" | %-16s", k)
	}
	fmt.Println()
	for _, p := range []int{2, 4, 8, 16} {
		fmt.Printf("%-4d", p)
		for _, k := range kinds {
			cfg := parapre.DefaultConfig(p, k)
			res, err := parapre.Solve(prob, cfg)
			if err != nil {
				log.Fatal(err)
			}
			if res.Converged {
				fmt.Printf(" | %4d itr %6.3fs", res.Iterations, res.SetupTime+res.SolveTime)
			} else {
				fmt.Printf(" | %-16s", "not converged")
			}
		}
		fmt.Println()
	}
}
