// Package dsys implements the distributed sparse linear system of the
// paper's §1.1 and §2: each processor owns one subdomain's rows of the
// (only logically existing) global system. Local unknowns are ordered
// internal-first, interdomain-interface-last, giving every subdomain
// matrix the 2×2 block structure of eq. (4),
//
//	A_i = | B_i  F_i |
//	      | E_i  C_i |
//
// plus coupling columns E_ij into the external interface unknowns owned by
// neighboring subdomains (eq. 5). External interface values live in an
// extension of the local vector and are refreshed by neighbor exchange
// before every matrix-vector product.
package dsys

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"parapre/internal/dist"
	"parapre/internal/obs"
	"parapre/internal/par"
	"parapre/internal/paranoid"
	"parapre/internal/sparse"
)

// Neighbor describes the exchange pattern with one adjacent subdomain.
type Neighbor struct {
	Rank    int
	SendIdx []int // local indices of owned unknowns this neighbor reads
	RecvOff int   // offset of this neighbor's block in the external buffer
	RecvLen int
}

// System is the subdomain-local view of the distributed system held by one
// rank. Local numbering: [0, NInt) internal, [NInt, NLoc) interdomain
// interface, [NLoc, NLoc+NExt) external interface (owned by neighbors).
type System struct {
	Rank int
	P    int
	N    int // global dimension

	GlobalIDs []int // global id of each owned local unknown
	NInt      int   // number of internal unknowns
	ExtGlobal []int // global ids of the external interface unknowns

	A *sparse.CSR // NLoc × (NLoc+NExt), rows in local ordering
	B []float64   // local right-hand side, length NLoc

	Neigh []Neighbor

	// sendBuf is the pooled staging buffer for sendInterface, held as an
	// atomic lease: an exchange swaps the pointer out (falling back to a
	// fresh allocation when another solve holds it) and parks it back when
	// done. dist.Comm.Send copies its payload, so reuse across sends and
	// exchanges is safe; the lease keeps the steady-state halo exchange
	// allocation-free for a single solve while staying race-free when
	// concurrent solves share the distributed system (core.Session serves
	// simultaneous right-hand sides over one distribution).
	sendBuf atomic.Pointer[[]float64]
}

// NLoc returns the number of owned unknowns.
func (s *System) NLoc() int { return len(s.GlobalIDs) }

// NExt returns the number of external interface unknowns.
func (s *System) NExt() int { return len(s.ExtGlobal) }

// NIface returns the number of owned interdomain-interface unknowns.
func (s *System) NIface() int { return s.NLoc() - s.NInt }

// String summarizes the subdomain.
func (s *System) String() string {
	return fmt.Sprintf("System{rank %d/%d, nloc=%d (int=%d, ifc=%d), next=%d, neigh=%d}",
		s.Rank, s.P, s.NLoc(), s.NInt, s.NIface(), s.NExt(), len(s.Neigh))
}

// Distribute splits the globally assembled system (a, b) into P subdomain
// systems according to part (part[g] = owning rank of global row g). It
// performs the classification of §1.1 on the symmetrized pattern: a node
// is interdomain interface iff its matrix row couples to a node of another
// subdomain, or a row of another subdomain couples to it; otherwise it is
// internal. The column direction matters for structurally unsymmetric
// matrices — a node referenced only through incoming cross edges is sent
// to its neighbors during the exchange, and the Schur machinery requires
// every sent node to be an interface unknown. The node classification and
// the per-rank subdomain builds are independent, so both run on the
// shared-memory worker pool; each rank's System is a deterministic
// function of (a, b, part), so the result does not depend on the worker
// count. Only the final neighbor wiring, which reads across ranks, stays
// serial.
func Distribute(a *sparse.CSR, b []float64, part []int, p int) []*System {
	if a.Rows != a.Cols {
		panic("dsys: matrix must be square")
	}
	n := a.Rows
	if len(part) != n || len(b) != n {
		panic("dsys: dimension mismatch between matrix, rhs and partition")
	}

	// Classify every global node. The row direction is embarrassingly
	// parallel; the column direction writes to arbitrary isIface entries,
	// so it stays serial (one O(nnz) sweep over the rows).
	isIface := make([]bool, n)
	par.For(n, 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, _ := a.Row(i)
			for _, j := range cols {
				if part[j] != part[i] {
					isIface[i] = true
					break
				}
			}
		}
	})
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			if part[j] != part[i] {
				isIface[j] = true
			}
		}
	}

	systems := make([]*System, p)
	par.For(p, 1, func(lo, hi int) {
		g2l := make([]int, n) // valid per-rank during its build pass
		for r := lo; r < hi; r++ {
			systems[r] = buildLocal(a, b, part, r, p, isIface, g2l)
		}
	})
	wireNeighbors(systems)
	// Pre-warm the blocked-SpMV format decision for each local matrix so
	// block detection (and any BSR conversion) happens once at
	// distribution time instead of inside the first preconditioned
	// iteration. Local matvecs then route through the cached choice.
	par.For(p, 1, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			systems[r].A.AutoBlocked()
		}
	})
	return systems
}

func buildLocal(a *sparse.CSR, b []float64, part []int, r, p int, isIface []bool, g2l []int) *System {
	n := a.Rows
	s := &System{Rank: r, P: p, N: n}

	// Owned unknowns: internal first, then interface, each in ascending
	// global order.
	for i := 0; i < n; i++ {
		if part[i] == r && !isIface[i] {
			s.GlobalIDs = append(s.GlobalIDs, i)
		}
	}
	s.NInt = len(s.GlobalIDs)
	for i := 0; i < n; i++ {
		if part[i] == r && isIface[i] {
			s.GlobalIDs = append(s.GlobalIDs, i)
		}
	}
	nloc := len(s.GlobalIDs)
	for l, g := range s.GlobalIDs {
		g2l[g] = l
	}

	// External interface: referenced columns owned elsewhere, grouped by
	// owner rank (ascending), sorted by global id within each group.
	extSeen := map[int]bool{}
	for _, g := range s.GlobalIDs {
		cols, _ := a.Row(g)
		for _, j := range cols {
			if part[j] != r && !extSeen[j] {
				extSeen[j] = true
				s.ExtGlobal = append(s.ExtGlobal, j)
			}
		}
	}
	sort.Slice(s.ExtGlobal, func(x, y int) bool {
		gx, gy := s.ExtGlobal[x], s.ExtGlobal[y]
		if part[gx] != part[gy] {
			return part[gx] < part[gy]
		}
		return gx < gy
	})
	extLocal := map[int]int{}
	for k, g := range s.ExtGlobal {
		extLocal[g] = nloc + k
	}

	// Neighbor receive blocks.
	for k := 0; k < len(s.ExtGlobal); {
		owner := part[s.ExtGlobal[k]]
		start := k
		for k < len(s.ExtGlobal) && part[s.ExtGlobal[k]] == owner {
			k++
		}
		s.Neigh = append(s.Neigh, Neighbor{Rank: owner, RecvOff: start, RecvLen: k - start})
	}

	// Local matrix rows.
	s.A = sparse.NewCSR(nloc, nloc+len(s.ExtGlobal), 0)
	s.B = make([]float64, nloc)
	for l, g := range s.GlobalIDs {
		s.B[l] = b[g]
		cols, vals := a.Row(g)
		start := len(s.A.ColIdx)
		for kk, j := range cols {
			var lj int
			if part[j] == r {
				lj = g2l[j]
			} else {
				lj = extLocal[j]
			}
			s.A.ColIdx = append(s.A.ColIdx, lj)
			s.A.Val = append(s.A.Val, vals[kk])
		}
		s.A.RowPtr[l+1] = len(s.A.ColIdx)
		sortRowInPlace(s.A.ColIdx[start:], s.A.Val[start:])
	}
	return s
}

func sortRowInPlace(cols []int, vals []float64) {
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
}

// wireNeighbors fills in the send sides: rank r must send to neighbor q
// exactly the unknowns q listed as externals owned by r, in q's receive
// order (sorted by global id).
func wireNeighbors(systems []*System) {
	for _, s := range systems {
		// Local index of each owned global id, for send-list construction.
		g2l := make(map[int]int, s.NLoc())
		for l, g := range s.GlobalIDs {
			g2l[g] = l
		}
		for qi := range systems {
			q := systems[qi]
			if q.Rank == s.Rank {
				continue
			}
			// Does q receive anything from s?
			for _, nb := range q.Neigh {
				if nb.Rank != s.Rank {
					continue
				}
				send := make([]int, nb.RecvLen)
				for k := 0; k < nb.RecvLen; k++ {
					g := q.ExtGlobal[nb.RecvOff+k]
					l, ok := g2l[g]
					if !ok {
						panic(fmt.Sprintf("dsys: rank %d needs global %d from %d, which does not own it",
							q.Rank, g, s.Rank))
					}
					send[k] = l
				}
				// Record (or create) the neighbor entry on s for q.
				found := false
				for ni := range s.Neigh {
					if s.Neigh[ni].Rank == q.Rank {
						s.Neigh[ni].SendIdx = send
						found = true
						break
					}
				}
				if !found {
					// s sends to q but receives nothing from it (possible
					// with unsymmetric patterns).
					s.Neigh = append(s.Neigh, Neighbor{Rank: q.Rank, SendIdx: send, RecvOff: s.NExt(), RecvLen: 0})
				}
			}
		}
		sort.Slice(s.Neigh, func(i, j int) bool { return s.Neigh[i].Rank < s.Neigh[j].Rank })
	}
}

// tagExchange is the message tag used by interface exchanges.
const tagExchange = 100

// ExchangeError describes a failed or corrupted neighbor exchange: a
// receive that returned a typed communicator error, a neighbor block of
// the wrong length, or a non-finite payload (injected corruption or a
// poisoned upstream vector). It wraps the underlying receive error, if
// any, for errors.As/Is inspection.
type ExchangeError struct {
	Rank   int
	Peer   int // -1 when the error is not tied to one neighbor
	Reason string
	Err    error // underlying dist receive error (may be nil)
}

func (e *ExchangeError) Error() string {
	msg := fmt.Sprintf("dsys: rank %d exchange with rank %d: %s", e.Rank, e.Peer, e.Reason)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying receive error.
func (e *ExchangeError) Unwrap() error { return e.Err }

// Exchange refreshes the external-interface section of ext (length
// NLoc+NExt, owned values in ext[:NLoc] already filled by the caller) by
// exchanging interface values with all neighbors through c. It is the
// legacy API: a failed receive panics with the typed error; corrupted
// (non-finite) payloads pass through silently. Error-aware callers use
// ExchangeErr.
func (s *System) Exchange(c *dist.Comm, ext []float64) {
	paranoid.CheckLen("dsys: Exchange ext", len(ext), s.NLoc()+s.NExt())
	sp := c.BeginSpan(obs.KindExchange, "")
	defer c.EndSpan(sp)
	s.sendInterface(c, ext)
	for _, nb := range s.Neigh {
		if nb.RecvLen == 0 {
			continue
		}
		got := c.Recv(nb.Rank, tagExchange)
		paranoid.CheckLen("dsys: Exchange recv block", len(got), nb.RecvLen)
		copy(ext[s.NLoc()+nb.RecvOff:s.NLoc()+nb.RecvOff+nb.RecvLen], got)
	}
}

// ExchangeErr is the strict interface exchange: every neighbor receive is
// validated (typed receive errors, block length, payload finiteness) and
// failures surface as an *ExchangeError instead of a panic or a silent
// wrong answer. All sends are posted before the first receive, so a
// receive-side failure never strands a neighbor waiting for this rank's
// contribution.
func (s *System) ExchangeErr(c *dist.Comm, ext []float64) error {
	if len(ext) != s.NLoc()+s.NExt() {
		return &ExchangeError{Rank: s.Rank, Peer: -1,
			Reason: fmt.Sprintf("ext buffer length %d, want %d", len(ext), s.NLoc()+s.NExt())}
	}
	sp := c.BeginSpan(obs.KindExchange, "")
	defer c.EndSpan(sp)
	s.sendInterface(c, ext)
	// Every neighbor receive is drained even after a failure: returning
	// early would strand the remaining in-flight blocks in their channels,
	// and the next exchange (possibly of a different tag) would mispair
	// against the stale messages. The first error wins.
	var first *ExchangeError
	fail := func(e *ExchangeError) {
		if first == nil {
			first = e
		}
	}
	for _, nb := range s.Neigh {
		if nb.RecvLen == 0 {
			continue
		}
		got, err := c.RecvErr(nb.Rank, tagExchange)
		if err != nil {
			fail(&ExchangeError{Rank: s.Rank, Peer: nb.Rank, Reason: "receive failed", Err: err})
			continue
		}
		if len(got) != nb.RecvLen {
			fail(&ExchangeError{Rank: s.Rank, Peer: nb.Rank,
				Reason: fmt.Sprintf("neighbor block length %d, want %d", len(got), nb.RecvLen)})
			continue
		}
		ok := true
		for _, v := range got {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				fail(&ExchangeError{Rank: s.Rank, Peer: nb.Rank, Reason: "non-finite payload"})
				ok = false
				break
			}
		}
		if ok {
			copy(ext[s.NLoc()+nb.RecvOff:s.NLoc()+nb.RecvOff+nb.RecvLen], got)
		}
	}
	if first != nil {
		return first
	}
	return nil
}

// sendInterface posts this rank's owned interface values to every
// neighbor that reads them.
func (s *System) sendInterface(c *dist.Comm, ext []float64) {
	// Lease the pooled buffer; a concurrent solve that finds the slot
	// empty allocates its own lease (the loser of the final Store is
	// simply collected). The *[]float64 box is stable across calls, so
	// the single-solve steady state allocates nothing.
	lease := s.sendBuf.Swap(nil)
	if lease == nil {
		b := make([]float64, 0, 64)
		lease = &b
	}
	buf := *lease
	defer func() {
		*lease = buf[:0]
		s.sendBuf.Store(lease)
	}()
	for _, nb := range s.Neigh {
		if len(nb.SendIdx) == 0 {
			continue
		}
		buf = buf[:0]
		for _, l := range nb.SendIdx {
			buf = append(buf, ext[l])
		}
		c.Send(nb.Rank, tagExchange, buf)
	}
}

// MatVec computes y = A_global·x restricted to this subdomain: x and y are
// owned-length vectors; the external values needed by interface rows are
// fetched from the neighbors. ext must have length NLoc+NExt and is used
// as scratch.
func (s *System) MatVec(c *dist.Comm, y, x, ext []float64) {
	paranoid.CheckMinLen("dsys: MatVec x", len(x), s.NLoc())
	paranoid.CheckMinLen("dsys: MatVec y", len(y), s.NLoc())
	sp := c.BeginSpan(obs.KindSpMV, "")
	defer c.EndSpan(sp)
	copy(ext, x)
	s.Exchange(c, ext)
	s.A.MulVecTo(y, ext)
	c.Compute(2 * float64(s.A.NNZ()))
}

// MatVecErr is the strict distributed matrix-vector product: the
// interface exchange runs through ExchangeErr, so communication failures
// and injected corruption come back as typed errors. On error y is left
// untouched; the caller decides how to degrade. The virtual-clock charges
// of a successful call are identical to MatVec.
func (s *System) MatVecErr(c *dist.Comm, y, x, ext []float64) error {
	paranoid.CheckMinLen("dsys: MatVec x", len(x), s.NLoc())
	paranoid.CheckMinLen("dsys: MatVec y", len(y), s.NLoc())
	sp := c.BeginSpan(obs.KindSpMV, "")
	defer c.EndSpan(sp)
	copy(ext, x)
	if err := s.ExchangeErr(c, ext); err != nil {
		return err
	}
	s.A.MulVecTo(y, ext)
	c.Compute(2 * float64(s.A.NNZ()))
	return nil
}

// Dot returns the global inner product of two distributed vectors.
func (s *System) Dot(c *dist.Comm, x, y []float64) float64 {
	local := sparse.Dot(x[:s.NLoc()], y[:s.NLoc()])
	c.Compute(2 * float64(s.NLoc()))
	return c.AllReduceSum(local)
}

// Norm2 returns the global Euclidean norm of a distributed vector.
func (s *System) Norm2(c *dist.Comm, x []float64) float64 {
	local := sparse.Dot(x[:s.NLoc()], x[:s.NLoc()])
	c.Compute(2 * float64(s.NLoc()))
	sum := c.AllReduceSum(local)
	if sum < 0 {
		sum = 0
	}
	return math.Sqrt(sum)
}

// Gather reassembles a global vector from the per-rank owned vectors.
// Test/diagnostic helper: the solvers never materialize global vectors.
func Gather(systems []*System, locals [][]float64) []float64 {
	out := make([]float64, systems[0].N)
	for r, s := range systems {
		for l, g := range s.GlobalIDs {
			out[g] = locals[r][l]
		}
	}
	return out
}

// Scatter splits a global vector into per-rank owned vectors.
func Scatter(systems []*System, x []float64) [][]float64 {
	out := make([][]float64, len(systems))
	for r, s := range systems {
		v := make([]float64, s.NLoc())
		for l, g := range s.GlobalIDs {
			v[l] = x[g]
		}
		out[r] = v
	}
	return out
}
