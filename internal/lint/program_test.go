package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// fixturePackageDirs returns every directory under root that holds .go
// files — one fixture may span several packages (a simulated kernel plus
// the helper package its taint flows out of).
func fixturePackageDirs(t *testing.T, root string) []string {
	t.Helper()
	var dirs []string
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(d.Name()) == ".go" {
			if dir := filepath.Dir(path); !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(dirs)
	return dirs
}

// loadProgramFixture loads every package of a multi-package fixture and
// assembles the Program the interprocedural analyzers run on.
func loadProgramFixture(t *testing.T, l *Loader, rel string) (*Program, []*Package) {
	t.Helper()
	root := filepath.Join("testdata", "src", rel)
	var pkgs []*Package
	for _, dir := range fixturePackageDirs(t, root) {
		p, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("loading fixture package %s: %v", dir, err)
		}
		pkgs = append(pkgs, p)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s has no packages", rel)
	}
	return NewProgram(pkgs), pkgs
}

func programAnalyzerByName(t *testing.T, name string) *ProgramAnalyzer {
	t.Helper()
	for _, a := range AllProgram() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no program analyzer named %q", name)
	return nil
}

// TestProgramAnalyzerFixtures mirrors TestAnalyzerFixtures for the
// interprocedural suite: every WANT-marked line of the positive fixture
// is flagged (and nothing else), the negative fixture is silent. Lines
// are deduplicated because one site may be reported once per annotated
// root whose cone reaches it.
func TestProgramAnalyzerFixtures(t *testing.T) {
	l := newTestLoader(t)
	for _, name := range []string{"detaint", "allocfree", "errtype", "waitleak"} {
		t.Run(name, func(t *testing.T) {
			a := programAnalyzerByName(t, name)

			prog, pkgs := loadProgramFixture(t, l, filepath.Join(name, "positive"))
			gotSet := map[string]bool{}
			for _, d := range a.Run(prog) {
				gotSet[keyOf(d.Pos.Filename, d.Pos.Line)] = true
			}
			got := make([]string, 0, len(gotSet))
			for k := range gotSet {
				got = append(got, k)
			}
			sort.Strings(got)
			var want []string
			for _, p := range pkgs {
				want = append(want, wantLines(t, p, name)...)
			}
			sort.Strings(want)
			if len(want) == 0 {
				t.Fatalf("positive fixture has no WANT markers")
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("positive fixture: got diagnostics at %v, want %v", got, want)
			}

			neg, _ := loadProgramFixture(t, l, filepath.Join(name, "negative"))
			if ds := a.Run(neg); len(ds) != 0 {
				t.Errorf("negative fixture: unexpected diagnostics: %v", ds)
			}
		})
	}
}

// TestCallGraphBuilder pins the builder's resolution rules on a fixture
// exercising the three call kinds, recursion, method calls, method
// values and indirect calls.
func TestCallGraphBuilder(t *testing.T) {
	l := newTestLoader(t)
	p := loadFixture(t, l, "callgraph")
	g := buildCallGraph([]*Package{p})

	byName := map[string]*CGNode{}
	for fn, n := range g.Nodes {
		byName[fn.Name()] = n
	}
	for _, want := range []string{"Leaf", "Rec", "Caller", "M", "MethodCalls"} {
		if byName[want] == nil {
			t.Fatalf("no node for %s (have %d nodes)", want, len(g.Nodes))
		}
	}

	// Caller: one edge per call kind, all to Leaf.
	kinds := map[CallKind]int{}
	for _, e := range byName["Caller"].Out {
		if e.Callee != byName["Leaf"] {
			t.Errorf("Caller edge to %v, want Leaf", e.Callee)
			continue
		}
		kinds[e.Kind]++
	}
	if kinds[CallNormal] != 1 || kinds[CallDefer] != 1 || kinds[CallGo] != 1 {
		t.Errorf("Caller edge kinds = %v, want one each of normal/defer/go", kinds)
	}

	// Rec: a self edge.
	self := false
	for _, e := range byName["Rec"].Out {
		self = self || e.Callee == byName["Rec"]
	}
	if !self {
		t.Errorf("Rec has no self edge: %+v", byName["Rec"].Out)
	}

	// MethodCalls: resolved method edge, indirect mark from f().
	mc := byName["MethodCalls"]
	methodEdge := false
	for _, e := range mc.Out {
		methodEdge = methodEdge || e.Callee == byName["M"]
	}
	if !methodEdge {
		t.Errorf("MethodCalls has no edge to M: %+v", mc.Out)
	}
	if !mc.HasIndirect {
		t.Errorf("MethodCalls must be marked HasIndirect (calls parameter f)")
	}

	// The method value t.M marks M address-taken; Leaf, only ever called
	// directly, is not.
	if !byName["M"].AddressTaken {
		t.Errorf("M must be AddressTaken (method value g := t.M)")
	}
	if byName["Leaf"].AddressTaken {
		t.Errorf("Leaf must not be AddressTaken (only called)")
	}
	if byName["Caller"].HasIndirect {
		t.Errorf("Caller must not be HasIndirect (all calls resolve)")
	}
}
