// Package sparse provides the sparse and dense linear-algebra kernels that
// every other package in this repository builds on: compressed sparse row
// (CSR) matrices, coordinate (COO) assembly, dense blocks with LU solves,
// permutations, and the vector kernels used by the Krylov solvers.
//
// The package is deliberately self-contained and allocation-conscious: the
// hot kernels (MulVecTo, triangular solves in package ilu) never allocate,
// so they can sit inside distributed solver loops.
package sparse

import (
	"fmt"
	"sort"
	"sync/atomic"

	"parapre/internal/par"
	"parapre/internal/paranoid"
)

// CSR is a sparse matrix in compressed sparse row format.
//
// Row i owns the half-open index range RowPtr[i]:RowPtr[i+1] of ColIdx and
// Val. Column indices within a row are strictly increasing after
// normalization (FromCOO and all constructors in this package guarantee
// it); SortRows restores the invariant after manual surgery.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64

	// rowPart caches the nnz-balanced row partition used by the parallel
	// matrix-vector kernels. Lazily computed, atomically published (two
	// ranks may share a matrix read-only), and revalidated against the
	// current shape on every use — see rowPartition.
	rowPart atomic.Pointer[rowPartCache]

	// bsr caches the blocked-format detection verdict of the adaptive
	// matvec router — see blocked in bsr.go. Mutating methods invalidate
	// it; direct Val edits require InvalidateBlocked.
	bsr atomic.Pointer[bsrCache]
}

// NewCSR returns an empty r×c matrix with capacity for nnz nonzeros.
func NewCSR(r, c, nnz int) *CSR {
	return &CSR{
		Rows:   r,
		Cols:   c,
		RowPtr: make([]int, r+1),
		ColIdx: make([]int, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
}

// Dims returns the matrix dimensions.
func (a *CSR) Dims() (r, c int) { return a.Rows, a.Cols }

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.ColIdx) }

// RowNNZ returns the number of stored entries in row i.
func (a *CSR) RowNNZ(i int) int { return a.RowPtr[i+1] - a.RowPtr[i] }

// Row returns the column-index and value slices of row i. The slices alias
// the matrix storage; callers must not grow them.
func (a *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColIdx[lo:hi], a.Val[lo:hi]
}

// At returns the entry (i, j), or 0 if it is not stored. It binary-searches
// the row and is intended for tests and assembly-time inspection, not for
// inner loops.
func (a *CSR) At(i, j int) float64 {
	cols, vals := a.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// SetExisting overwrites the stored entry (i, j) and reports whether the
// entry exists in the sparsity pattern.
func (a *CSR) SetExisting(i, j int, v float64) bool {
	cols, vals := a.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		vals[k] = v
		a.InvalidateBlocked()
		return true
	}
	return false
}

// AddExisting adds v to the stored entry (i, j) and reports whether the
// entry exists in the sparsity pattern.
func (a *CSR) AddExisting(i, j int, v float64) bool {
	cols, vals := a.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		vals[k] += v
		a.InvalidateBlocked()
		return true
	}
	return false
}

// Clone returns a deep copy of a.
func (a *CSR) Clone() *CSR {
	b := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: append([]int(nil), a.RowPtr...),
		ColIdx: append([]int(nil), a.ColIdx...),
		Val:    append([]float64(nil), a.Val...),
	}
	return b
}

// MulVec returns y = A·x as a fresh slice.
func (a *CSR) MulVec(x []float64) []float64 {
	y := make([]float64, a.Rows)
	a.MulVecTo(y, x)
	return y
}

// rowPartCache is one computed nnz-balanced row partition, tagged with
// the shape it was computed for so structural edits invalidate it.
type rowPartCache struct {
	segs, rows, nnz int
	bounds          []int // len segs+1, non-decreasing, covers [0, Rows)
}

// spmvParMinNNZ is the matrix size below which the matrix-vector kernels
// stay serial: small subdomain blocks are not worth the fan-out.
const spmvParMinNNZ = 8192

// rowPartition returns segment boundaries splitting the rows into segs
// contiguous ranges of roughly equal nonzero count, so one long row does
// not serialize a parallel sweep. The partition is computed once and
// cached; it is recomputed whenever segs, the row count, or the nonzero
// count changed since it was built. (Balance — not correctness — depends
// on RowPtr: any cached boundary vector covering the rows yields exact
// results, so a stale-but-covering partition is merely slower.)
func (a *CSR) rowPartition(segs int) []int {
	if p := a.rowPart.Load(); p != nil && p.segs == segs && p.rows == a.Rows && p.nnz == a.NNZ() {
		return p.bounds
	}
	nnz := a.NNZ()
	//lint:ignore allocfree row partition is computed once per (shape, segs) and cached in rowPart
	bounds := make([]int, segs+1)
	for s := 1; s < segs; s++ {
		target := int(int64(s) * int64(nnz) / int64(segs))
		r := sort.SearchInts(a.RowPtr, target)
		if r > a.Rows {
			r = a.Rows
		}
		if r < bounds[s-1] {
			r = bounds[s-1]
		}
		bounds[s] = r
	}
	bounds[segs] = a.Rows
	//lint:ignore allocfree row partition is computed once per (shape, segs) and cached in rowPart
	a.rowPart.Store(&rowPartCache{segs: segs, rows: a.Rows, nnz: nnz, bounds: bounds})
	return bounds
}

// mulRange computes y[lo:hi] = A[lo:hi]·x — the serial SpMV restricted to
// a row range. Each row is an independent left-to-right accumulation, so
// any row partition yields bit-identical results. Hoisting each row into
// local slices lets the compiler drop the bounds checks of the value and
// column loads, which is worth 15–25% on stencil rows.
func (a *CSR) mulRange(y, x []float64, lo, hi int) {
	rp, ci, vv := a.RowPtr, a.ColIdx, a.Val
	for i := lo; i < hi; i++ {
		var s float64
		row := vv[rp[i]:rp[i+1]]
		cols := ci[rp[i]:rp[i+1]]
		for k, v := range row {
			s += v * x[cols[k]]
		}
		y[i] = s
	}
}

func (a *CSR) mulAddRange(y []float64, alpha float64, x []float64, lo, hi int) {
	rp, ci, vv := a.RowPtr, a.ColIdx, a.Val
	for i := lo; i < hi; i++ {
		var s float64
		row := vv[rp[i]:rp[i+1]]
		cols := ci[rp[i]:rp[i+1]]
		for k, v := range row {
			s += v * x[cols[k]]
		}
		y[i] += alpha * s
	}
}

func (a *CSR) mulSubRange(y, x []float64, lo, hi int) {
	rp, ci, vv := a.RowPtr, a.ColIdx, a.Val
	for i := lo; i < hi; i++ {
		var s float64
		row := vv[rp[i]:rp[i+1]]
		cols := ci[rp[i]:rp[i+1]]
		for k, v := range row {
			s += v * x[cols[k]]
		}
		y[i] -= s
	}
}

func (a *CSR) checkMulDims(op string, y, x []float64) {
	if len(x) < a.Cols || len(y) < a.Rows {
		panic(fmt.Sprintf("sparse: %s dimension mismatch: A is %d×%d, len(x)=%d, len(y)=%d",
			op, a.Rows, a.Cols, len(x), len(y)))
	}
}

// MulVecTo computes y = A·x without allocating. x must have length Cols
// and y length Rows; y and x must not alias. Large matrices are swept in
// parallel over the cached nnz-balanced row partition; every row is still
// accumulated left-to-right, so the result is bit-identical to the serial
// sweep at any worker count.
//
//lint:allocfree steady state once the row partition and block cache are built; verified dynamically by TestCSRMulVecToZeroAllocSteadyState
func (a *CSR) MulVecTo(y, x []float64) {
	a.Validate()
	a.checkMulDims("MulVecTo", y, x)
	if b := a.blocked(); b != nil {
		b.MulVecTo(y, x)
		return
	}
	if w := par.Workers(); w > 1 && a.NNZ() >= spmvParMinNNZ {
		par.ForSegments(a.rowPartition(w), func(lo, hi int) { a.mulRange(y, x, lo, hi) })
		return
	}
	a.mulRange(y, x, 0, a.Rows)
}

// MulVecAdd computes y += alpha * A·x without allocating. Dimension rules
// and parallelism are as for MulVecTo.
func (a *CSR) MulVecAdd(y []float64, alpha float64, x []float64) {
	a.Validate()
	a.checkMulDims("MulVecAdd", y, x)
	if b := a.blocked(); b != nil {
		b.MulVecAdd(y, alpha, x)
		return
	}
	if w := par.Workers(); w > 1 && a.NNZ() >= spmvParMinNNZ {
		par.ForSegments(a.rowPartition(w), func(lo, hi int) { a.mulAddRange(y, alpha, x, lo, hi) })
		return
	}
	a.mulAddRange(y, alpha, x, 0, a.Rows)
}

// MulVecSub computes y -= A·x without allocating. It is the residual-update
// kernel used by the Schur-complement right-hand-side construction.
// Dimension rules and parallelism are as for MulVecTo.
func (a *CSR) MulVecSub(y, x []float64) {
	a.Validate()
	a.checkMulDims("MulVecSub", y, x)
	if b := a.blocked(); b != nil {
		b.MulVecSub(y, x)
		return
	}
	if w := par.Workers(); w > 1 && a.NNZ() >= spmvParMinNNZ {
		par.ForSegments(a.rowPartition(w), func(lo, hi int) { a.mulSubRange(y, x, lo, hi) })
		return
	}
	a.mulSubRange(y, x, 0, a.Rows)
}

// Transpose returns Aᵀ with sorted rows.
func (a *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   a.Cols,
		Cols:   a.Rows,
		RowPtr: make([]int, a.Cols+1),
		ColIdx: make([]int, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	// Count entries per column of a.
	for _, j := range a.ColIdx {
		t.RowPtr[j+1]++
	}
	for i := 0; i < a.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int(nil), t.RowPtr...)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			p := next[j]
			t.ColIdx[p] = i
			t.Val[p] = a.Val[k]
			next[j]++
		}
	}
	return t
}

// Diagonal returns a copy of the main diagonal (missing entries are 0).
func (a *CSR) Diagonal() []float64 {
	n := a.Rows
	if a.Cols < n {
		n = a.Cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		k := sort.SearchInts(cols, i)
		if k < len(cols) && cols[k] == i {
			d[i] = vals[k]
		}
	}
	return d
}

// Scale multiplies every stored entry by s.
func (a *CSR) Scale(s float64) {
	for k := range a.Val {
		a.Val[k] *= s
	}
	a.InvalidateBlocked()
}

// insertionSortMaxRow is the row length up to which SortRows uses the
// allocation-free insertion sort. FEM and stencil rows (a handful of
// entries) always stay below it.
const insertionSortMaxRow = 32

// insertionSortRow sorts a single row's (cols, vals) pairs by column.
func insertionSortRow(cols []int, vals []float64) {
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
}

// SortRows sorts the column indices within each row, keeping values
// aligned. Constructors produce sorted rows already; this is for callers
// that build RowPtr/ColIdx/Val by hand. Short rows (the overwhelmingly
// common case) are insertion-sorted with no allocation; one reused sorter
// handles the rare long rows, so the whole pass allocates at most once
// instead of once per row.
func (a *CSR) SortRows() {
	a.InvalidateBlocked()
	var s rowSorter
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		if hi-lo < 2 {
			continue
		}
		cols := a.ColIdx[lo:hi]
		vals := a.Val[lo:hi]
		if hi-lo <= insertionSortMaxRow {
			insertionSortRow(cols, vals)
			continue
		}
		s.cols, s.vals = cols, vals
		sort.Sort(&s)
	}
}

type rowSorter struct {
	cols []int
	vals []float64
}

func (r *rowSorter) Len() int           { return len(r.cols) }
func (r *rowSorter) Less(i, j int) bool { return r.cols[i] < r.cols[j] }
func (r *rowSorter) Swap(i, j int) {
	r.cols[i], r.cols[j] = r.cols[j], r.cols[i]
	r.vals[i], r.vals[j] = r.vals[j], r.vals[i]
}

// Validate panics if the CSR structural invariants (see CheckValid) are
// violated. It is compiled in only under the `paranoid` build tag; in the
// default build it is an empty function the compiler inlines away, so the
// kernels can call it unconditionally at their entry points.
func (a *CSR) Validate() {
	if !paranoid.Enabled {
		return
	}
	if err := a.CheckValid(); err != nil {
		panic("paranoid: " + err.Error())
	}
}

// CheckValid verifies the CSR structural invariants: monotone RowPtr,
// in-range sorted unique column indices. It returns a descriptive error for
// the first violation found, or nil.
func (a *CSR) CheckValid() error {
	if len(a.RowPtr) != a.Rows+1 {
		return fmt.Errorf("sparse: RowPtr has length %d, want %d", len(a.RowPtr), a.Rows+1)
	}
	if a.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", a.RowPtr[0])
	}
	if a.RowPtr[a.Rows] != len(a.ColIdx) || len(a.ColIdx) != len(a.Val) {
		return fmt.Errorf("sparse: storage lengths inconsistent: RowPtr[end]=%d len(ColIdx)=%d len(Val)=%d",
			a.RowPtr[a.Rows], len(a.ColIdx), len(a.Val))
	}
	for i := 0; i < a.Rows; i++ {
		if a.RowPtr[i] > a.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
		prev := -1
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j < 0 || j >= a.Cols {
				return fmt.Errorf("sparse: column %d out of range in row %d", j, i)
			}
			if j <= prev {
				return fmt.Errorf("sparse: row %d columns not strictly increasing (%d after %d)", i, j, prev)
			}
			prev = j
		}
	}
	return nil
}

// Dense expands the matrix to a dense representation. For tests and small
// coarse-grid systems only.
func (a *CSR) Dense() *Dense {
	d := NewDense(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d.Set(i, a.ColIdx[k], a.Val[k])
		}
	}
	return d
}

// Equal reports whether a and b have identical dimensions, patterns and
// values.
func (a *CSR) Equal(b *CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		//lint:ignore floatcmp Equal's contract is bit-exact value identity (determinism tests rely on it)
		if a.ColIdx[k] != b.ColIdx[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

// String returns a compact summary, not the full contents.
func (a *CSR) String() string {
	return fmt.Sprintf("CSR{%d×%d, nnz=%d}", a.Rows, a.Cols, a.NNZ())
}

// Identity returns the n×n identity matrix.
func Identity(n int) *CSR {
	a := NewCSR(n, n, n)
	for i := 0; i < n; i++ {
		a.RowPtr[i+1] = i + 1
		a.ColIdx = append(a.ColIdx, i)
		a.Val = append(a.Val, 1)
	}
	return a
}
