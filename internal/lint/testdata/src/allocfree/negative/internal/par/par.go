// Fan-out boundary stub for the negative allocfree fixture.
package par

// For runs f(0..n-1); the real pool's serial path runs f inline.
func For(n int, f func(int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}
