package dist

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// Satellite: a deliberate 3-rank receive cycle must be diagnosed as a
// DeadlockError whose per-rank states name each rank's stuck receive.
func TestDeadlockCycleDiagnosed(t *testing.T) {
	m := testMachine()
	start := time.Now()
	stats, err := RunOpts(3, m, WorldOptions{Watchdog: 100 * time.Millisecond}, func(c *Comm) {
		// Everyone receives from the next rank; nobody ever sends.
		c.Recv((c.Rank()+1)%3, 7)
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if de.Budget != 100*time.Millisecond {
		t.Errorf("budget not recorded: %v", de.Budget)
	}
	if len(de.Ranks) != 3 {
		t.Fatalf("want 3 rank states, got %d", len(de.Ranks))
	}
	for r, st := range de.Ranks {
		if st.Rank != r || st.LastOp != "recv" || st.Peer != (r+1)%3 || st.Tag != 7 {
			t.Errorf("rank %d diagnostics wrong: %+v", r, st)
		}
		if !st.Blocked || st.Done || st.Crashed {
			t.Errorf("rank %d should be blocked: %+v", r, st)
		}
	}
	if msg := de.Error(); !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "recv") {
		t.Errorf("message not descriptive: %q", msg)
	}
	if stats == nil {
		t.Fatal("stats must be returned alongside the deadlock")
	}
	if time.Since(start) > 10*time.Second {
		t.Error("deadlock detection took far longer than the budget")
	}
}

// A blocked collective must also be unwound and diagnosed.
func TestDeadlockInCollectiveDiagnosed(t *testing.T) {
	m := testMachine()
	_, err := RunOpts(2, m, WorldOptions{Watchdog: 100 * time.Millisecond}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Barrier() // rank 1 never arrives
		} else {
			c.Recv(0, 1) // rank 0 never sends
		}
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if de.Ranks[0].LastOp != "barrier" || de.Ranks[1].LastOp != "recv" {
		t.Errorf("per-rank last ops wrong: %+v", de.Ranks)
	}
}

// Satellite: the new error-returning receive reports tag mismatches with
// full diagnostics...
func TestRecvErrTagMismatch(t *testing.T) {
	m := testMachine()
	var gotErr error
	_, err := RunOpts(2, m, WorldOptions{Watchdog: time.Second}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1, 2})
		} else {
			_, gotErr = c.RecvErr(0, 2)
		}
	})
	if err != nil {
		t.Fatalf("RunOpts: %v", err)
	}
	var tm *TagMismatchError
	if !errors.As(gotErr, &tm) {
		t.Fatalf("want TagMismatchError, got %v", gotErr)
	}
	if tm.Rank != 1 || tm.Peer != 0 || tm.Want != 2 || tm.Got != 1 {
		t.Errorf("fields wrong: %+v", tm)
	}
}

// ...while the legacy panicking Recv keeps its exact old contract: the
// typed error is the panic value.
func TestLegacyRecvStillPanicsOnMismatch(t *testing.T) {
	m := testMachine()
	var recovered any
	Run(2, m, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			return
		}
		defer func() { recovered = recover() }()
		c.Recv(0, 2)
	})
	tm, ok := recovered.(*TagMismatchError)
	if !ok {
		t.Fatalf("want *TagMismatchError panic, got %#v", recovered)
	}
	if tm.Want != 2 || tm.Got != 1 {
		t.Errorf("fields wrong: %+v", tm)
	}
}

// A healthy run making steady progress must never trip a short watchdog:
// the budget bounds stall time, not total runtime.
func TestWatchdogIgnoresSlowButLiveRun(t *testing.T) {
	m := testMachine()
	_, err := RunOpts(2, m, WorldOptions{Watchdog: 150 * time.Millisecond}, func(c *Comm) {
		for i := 0; i < 8; i++ {
			time.Sleep(50 * time.Millisecond) // total 400ms > budget
			c.Barrier()
		}
	})
	if err != nil {
		t.Fatalf("healthy run tripped the watchdog: %v", err)
	}
}

// A panic escaping a rank function must come back as a RankPanicError and
// unwind the other ranks instead of hanging them.
func TestRankPanicBecomesTypedError(t *testing.T) {
	m := testMachine()
	_, err := RunOpts(3, m, WorldOptions{Watchdog: 10 * time.Second}, func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
		// The others block in a collective until the abort releases them.
		c.Barrier()
	})
	var pe *RankPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want RankPanicError, got %v", err)
	}
	if pe.Rank != 1 || pe.Value != any("boom") {
		t.Errorf("fields wrong: rank %d value %v", pe.Rank, pe.Value)
	}
	if pe.Stack == "" {
		t.Error("stack trace missing")
	}
	if !strings.Contains(pe.Error(), "boom") {
		t.Errorf("message must carry the panic value: %q", pe.Error())
	}
}

// Satellite: the per-pair channel depth is configurable. Depth 1 makes a
// two-messages-before-receiving protocol deadlock; the default depth
// absorbs it.
func TestBufferDepthOption(t *testing.T) {
	m := testMachine()
	burst := func(c *Comm) {
		peer := 1 - c.Rank()
		c.Send(peer, 1, []float64{1})
		c.Send(peer, 2, []float64{2})
		c.Recv(peer, 1)
		c.Recv(peer, 2)
	}
	if _, err := RunOpts(2, m, WorldOptions{Watchdog: time.Second}, burst); err != nil {
		t.Fatalf("default depth must absorb a 2-message burst: %v", err)
	}
	_, err := RunOpts(2, m, WorldOptions{BufferDepth: 1, Watchdog: 100 * time.Millisecond}, burst)
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("depth 1 must deadlock the burst protocol, got %v", err)
	}
	for _, st := range de.Ranks {
		if st.LastOp != "send" {
			t.Errorf("rank %d should be stuck in send: %+v", st.Rank, st)
		}
	}
}

// The sender-side α satellite: a send must advance the sender's clock by
// exactly the machine latency.
func TestSendChargesSenderAlpha(t *testing.T) {
	m := testMachine()
	stats := Run(2, m, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1, 2, 3})
		} else {
			c.Recv(0, 1)
		}
	})
	if got, want := stats[0].Clock, m.Latency; got != want {
		t.Errorf("sender clock %g, want α = %g", got, want)
	}
	// The receiver sees the stamped send time plus its own α + β·bytes.
	wantRecv := m.Latency + m.messageTime(8*3)
	if got := stats[1].Clock; got != wantRecv {
		t.Errorf("receiver clock %g, want %g", got, wantRecv)
	}
}
